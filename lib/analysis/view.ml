module Schema = Cactis.Schema

type attr = {
  a_name : string;
  a_intrinsic : bool;
  a_constrained : bool;
  a_sources : Schema.source list;
  a_shape : Schema.rule_shape option;
  a_ops : int;
}

type rel = {
  r_name : string;
  r_target : string;
  r_inverse : string;
  r_card : Schema.cardinality;
}

type vtype = {
  t_name : string;
  t_attrs : attr list;
  t_rels : rel list;
  t_exports : ((string * string) * string) list;
}

type t = {
  v_types : vtype list;
  v_subtypes : (string * string) list;
}

let of_schema sch =
  let types =
    Schema.type_names sch
    |> List.map (fun tn ->
           let attrs =
             Schema.attrs sch ~type_name:tn
             |> List.map (fun (d : Schema.attr_def) ->
                    let intrinsic, sources =
                      match d.Schema.kind with
                      | Schema.Intrinsic _ -> (true, [])
                      | Schema.Derived r -> (false, r.Schema.sources)
                    in
                    {
                      a_name = d.Schema.attr_name;
                      a_intrinsic = intrinsic;
                      a_constrained = d.Schema.constraint_ <> None;
                      a_sources = sources;
                      a_shape = Schema.rule_shape sch ~type_name:tn ~attr:d.Schema.attr_name;
                      (* Compute closures are opaque: charge one op per
                         declared source plus one for the combination. *)
                      a_ops = (if intrinsic then 0 else List.length sources + 1);
                    })
           in
           let rels =
             Schema.rels sch ~type_name:tn
             |> List.map (fun (r : Schema.rel_def) ->
                    {
                      r_name = r.Schema.rel_name;
                      r_target = r.Schema.target;
                      r_inverse = r.Schema.inverse;
                      r_card = r.Schema.card;
                    })
           in
           let exports =
             Schema.exports sch ~type_name:tn
             |> List.map (fun (r, e, a) -> ((r, e), a))
           in
           { t_name = tn; t_attrs = attrs; t_rels = rels; t_exports = exports })
  in
  let subtypes =
    Schema.subtype_names sch
    |> List.map (fun s -> (s, (Schema.subtype sch s).Schema.parent))
  in
  { v_types = types; v_subtypes = subtypes }

let find_type v tn = List.find_opt (fun t -> String.equal t.t_name tn) v.v_types
let find_attr t a = List.find_opt (fun d -> String.equal d.a_name a) t.t_attrs
let find_rel t r = List.find_opt (fun d -> String.equal d.r_name r) t.t_rels

let resolve_export v ~target ~inverse name =
  match find_type v target with
  | None -> name
  | Some t -> (
    match List.assoc_opt (inverse, name) t.t_exports with
    | Some a -> a
    | None -> name)

let exported_attrs t = List.map snd t.t_exports |> List.sort_uniq String.compare

let membership_prefix = "$in:"

let is_membership a =
  String.length a > String.length membership_prefix
  && String.sub a 0 (String.length membership_prefix) = membership_prefix

let attr_display a =
  if is_membership a then
    Printf.sprintf "subtype %s predicate"
      (String.sub a (String.length membership_prefix)
         (String.length a - String.length membership_prefix))
  else a
