lib/ddl/query.ml: Cactis Elaborate Lexer List Parser Printf
