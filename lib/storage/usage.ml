module Symbol = Cactis_util.Symbol

type crossing = {
  from_instance : int;
  rel : string;
  to_instance : int;
}

(* Crossings are canonicalized so that (a, r, b) and (b, r, a) share a
   counter: the paper accumulates a single usage count per relationship
   link regardless of traversal direction.  Keys hold the interned
   relationship symbol so recording a crossing never hashes a string. *)
type key = {
  k_lo : int;
  k_rel : int;  (* interned relationship name *)
  k_hi : int;
}

let canon ~from_instance ~rel_sym ~to_instance =
  if from_instance <= to_instance then { k_lo = from_instance; k_rel = rel_sym; k_hi = to_instance }
  else { k_lo = to_instance; k_rel = rel_sym; k_hi = from_instance }

(* Instance ids are small dense ints, so per-instance reference counts
   live in a flat array (grown on demand) rather than a hash table — the
   engine bumps one on every instance touch. *)
type t = {
  mutable instance_counts : int array;
  crossing_counts : (key, int ref) Hashtbl.t;
}

let create () = { instance_counts = Array.make 64 0; crossing_counts = Hashtbl.create 64 }

let ensure t id =
  let n = Array.length t.instance_counts in
  if id >= n then begin
    let bigger = Array.make (max (id + 1) (2 * n)) 0 in
    Array.blit t.instance_counts 0 bigger 0 n;
    t.instance_counts <- bigger
  end

let touch_instance t id =
  if id < Array.length t.instance_counts then
    t.instance_counts.(id) <- t.instance_counts.(id) + 1
  else begin
    ensure t id;
    t.instance_counts.(id) <- t.instance_counts.(id) + 1
  end

let cell tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> r
  | None ->
    let r = ref 0 in
    Hashtbl.add tbl key r;
    r

let cross_sym t ~from_instance ~rel_sym ~to_instance =
  incr (cell t.crossing_counts (canon ~from_instance ~rel_sym ~to_instance))

let cross t ~from_instance ~rel ~to_instance =
  cross_sym t ~from_instance ~rel_sym:(Symbol.intern rel) ~to_instance

let instance_count t id =
  if id < Array.length t.instance_counts then t.instance_counts.(id) else 0

let crossing_count t ~from_instance ~rel ~to_instance =
  match
    Hashtbl.find_opt t.crossing_counts
      (canon ~from_instance ~rel_sym:(Symbol.intern rel) ~to_instance)
  with
  | Some r -> !r
  | None -> 0

let instances t =
  let acc = ref [] in
  Array.iteri (fun id c -> if c > 0 then acc := (id, c) :: !acc) t.instance_counts;
  !acc

let crossings t =
  Hashtbl.fold
    (fun k r acc ->
      ({ from_instance = k.k_lo; rel = Symbol.name k.k_rel; to_instance = k.k_hi }, !r) :: acc)
    t.crossing_counts []

let rel_totals t =
  let totals = Hashtbl.create 16 in
  Hashtbl.iter (fun k r -> let c = cell totals k.k_rel in c := !c + !r) t.crossing_counts;
  Hashtbl.fold (fun sym r acc -> (Symbol.name sym, !r) :: acc) totals []
  |> List.sort (fun (a, ca) (b, cb) -> match compare cb ca with 0 -> compare a b | c -> c)

let forget_instance t id =
  if id < Array.length t.instance_counts then t.instance_counts.(id) <- 0;
  let stale =
    Hashtbl.fold
      (fun k _ acc -> if k.k_lo = id || k.k_hi = id then k :: acc else acc)
      t.crossing_counts []
  in
  List.iter (Hashtbl.remove t.crossing_counts) stale

let reset t =
  Array.fill t.instance_counts 0 (Array.length t.instance_counts) 0;
  Hashtbl.reset t.crossing_counts
