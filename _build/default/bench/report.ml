(* Reporting helpers shared by the experiment harness. *)

module Counters = Cactis_util.Counters
module Table = Cactis_util.Ascii_table

let section id title claim =
  Printf.printf "\n%s\n%s %s\n%s\n" (String.make 78 '=') id title (String.make 78 '-');
  Printf.printf "paper claim: %s\n" claim

let table ~headers rows = print_string (Table.render ~headers rows)

(* [measure db f] runs [f] and returns the per-counter increase. *)
let measure db f =
  let c = Cactis.Db.counters db in
  let before = Counters.snapshot c in
  f ();
  Counters.diff ~before ~after:(Counters.snapshot c)

let count diff name = match List.assoc_opt name diff with Some v -> v | None -> 0

(* Disk reads of a database's pager. *)
let disk_reads db =
  Cactis_storage.Disk.reads (Cactis_storage.Pager.disk (Cactis.Store.pager (Cactis.Db.store db)))

(* ------------------------------------------------------------------ *)
(* Bechamel timing                                                     *)

let run_timing ~quota tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let rows =
    List.concat_map
      (fun test ->
        let raw = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance raw in
        Hashtbl.fold
          (fun name result acc ->
            let estimate =
              match Analyze.OLS.estimates result with
              | Some [ e ] -> Printf.sprintf "%.0f" e
              | Some _ | None -> "-"
            in
            (name, estimate) :: acc)
          analyzed [])
      tests
    |> List.sort compare
  in
  table ~headers:[ "benchmark"; "ns/run" ] (List.map (fun (n, e) -> [ n; e ]) rows)
