(** Ad-hoc queries with rule expressions.

    The paper's primitives include "defining predicates" (§2.2); beyond
    the persistent predicate subtypes, this module evaluates a rule
    expression once against each instance of a type — a lightweight
    query facility for tools and the CLI.

    Expressions use exactly the rule language ([max(deps.total) > 3 and
    not late]); they are evaluated against the current (incrementally
    maintained) attribute values via the oracle-style pure evaluator, so
    querying never changes importance bookkeeping or cached state. *)

exception Error of string

(** [select db ~type_name ~where] — ids of the instances satisfying the
    boolean expression [where].
    @raise Error on parse errors or if the expression is not boolean. *)
val select : Cactis.Db.t -> type_name:string -> where:string -> int list

(** [eval db id expr_src] — evaluate an expression against one instance
    (any result type). *)
val eval : Cactis.Db.t -> int -> string -> Cactis.Value.t

(** [aggregate db ~type_name ~expr ~f ~init] — fold [f] over the
    expression's value on every instance of the type (e.g. totals
    across a whole project). *)
val aggregate :
  Cactis.Db.t ->
  type_name:string ->
  expr:string ->
  f:('a -> Cactis.Value.t -> 'a) ->
  init:'a ->
  'a
