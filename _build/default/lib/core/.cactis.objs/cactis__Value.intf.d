lib/core/value.mli: Cactis_util Format
