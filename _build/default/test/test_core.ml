(* Core engine tests: schema construction, incremental evaluation,
   laziness, transactions, undo, constraints, subtypes. *)

module Value = Cactis.Value
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Db = Cactis.Db
module Engine = Cactis.Engine
module Errors = Cactis.Errors
module Store = Cactis.Store
module Counters = Cactis_util.Counters

let int n = Value.Int n
let bool b = Value.Bool b

let check_value = Alcotest.(check string)
let vstr v = Value.to_string v

(* A milestone-flavoured schema: nodes carry an intrinsic [local] work
   amount; derived [total] = local + max over dependencies' totals;
   derived [late] = total > 100. *)
let milestone_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "local" (int 1));
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "total"
       (Rule.combine_self_rel "local" "deps" "total" ~f:(fun local totals ->
            Value.add local (Value.max_ ~default:(int 0) totals))));
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "late" (Rule.map1 "total" (fun v -> bool (Value.as_int v > 100))));
  sch

let chain db n =
  (* n nodes, each depending on the previous one; returns ids root..leaf *)
  let ids = List.init n (fun _ -> Db.create_instance db "node") in
  let rec wire = function
    | a :: (b :: _ as rest) ->
      Db.link db ~from_id:a ~rel:"deps" ~to_id:b;
      wire rest
    | [ _ ] | [] -> ()
  in
  wire ids;
  ids

let test_basic_derivation () =
  let db = Db.create (milestone_schema ()) in
  let ids = chain db 5 in
  let head = List.hd ids in
  check_value "chain total" "5" (vstr (Db.get db head "total"));
  Db.set db (List.nth ids 4) "local" (int 200);
  check_value "after update" "204" (vstr (Db.get db head "total"));
  check_value "late flips" "true" (vstr (Db.get db head "late"))

let test_incremental_counts () =
  let db = Db.create (milestone_schema ()) in
  let ids = chain db 50 in
  let head = List.hd ids in
  ignore (Db.get db head "total");
  let c = Db.counters db in
  let before = Counters.get c "rule_evals" in
  (* Change the leaf: every total along the chain is stale, but only the
     watched head chain should be re-evaluated, each node once. *)
  Db.set db (List.nth ids 49) "local" (int 7);
  ignore (Db.get db head "total");
  let evals = Counters.get c "rule_evals" - before in
  Alcotest.(check bool)
    (Printf.sprintf "each chain total evaluated at most once (got %d)" evals)
    true
    (evals <= 50)

let test_lazy_unimportant () =
  let db = Db.create (milestone_schema ()) in
  let ids = chain db 20 in
  let leaf = List.nth ids 19 in
  let c = Db.counters db in
  let before = Counters.get c "rule_evals" in
  (* No one has queried anything: changing the leaf marks but must not
     evaluate. *)
  Db.set db leaf "local" (int 9);
  Alcotest.(check int) "no evaluation without importance" before (Counters.get c "rule_evals")

let test_redundant_change_cutoff () =
  let db = Db.create (milestone_schema ()) in
  let ids = chain db 30 in
  let leaf = List.nth ids 29 in
  let c = Db.counters db in
  Db.set db leaf "local" (int 5);
  let marks1 = Counters.get c "mark_visits" in
  Db.set db leaf "local" (int 6);
  let marks2 = Counters.get c "mark_visits" - marks1 in
  Alcotest.(check bool)
    (Printf.sprintf "second change marks O(1) (got %d visits)" marks2)
    true (marks2 <= 2)

let test_oracle_agreement () =
  let db = Db.create (milestone_schema ()) in
  let ids = chain db 10 in
  Db.set db (List.nth ids 3) "local" (int 40);
  Db.set db (List.nth ids 7) "local" (int 70);
  List.iter
    (fun id ->
      let got = Db.get db id "total" in
      let want = Engine.oracle_value (Db.engine db) id "total" in
      check_value (Printf.sprintf "node %d" id) (vstr want) (vstr got))
    ids

let test_undo_restores () =
  let db = Db.create (milestone_schema ()) in
  let ids = chain db 5 in
  let head = List.hd ids in
  let v0 = vstr (Db.get db head "total") in
  Db.set db (List.nth ids 4) "local" (int 50);
  let v1 = vstr (Db.get db head "total") in
  Alcotest.(check bool) "value changed" true (v0 <> v1);
  Db.undo_last db;
  check_value "undo restores derived value" v0 (vstr (Db.get db head "total"));
  Db.redo db;
  check_value "redo reapplies" v1 (vstr (Db.get db head "total"))

let test_txn_abort () =
  let db = Db.create (milestone_schema ()) in
  let ids = chain db 3 in
  let head = List.hd ids in
  let v0 = vstr (Db.get db head "total") in
  Db.begin_txn db;
  Db.set db (List.nth ids 2) "local" (int 99);
  Db.abort db;
  check_value "abort restores" v0 (vstr (Db.get db head "total"))

let test_constraint_rollback () =
  let sch = milestone_schema () in
  Schema.add_attr sch ~type_name:"node"
    (Rule.constraint_attr "total_ok" ~message:"total exceeds 1000"
       (Rule.map1 "total" (fun v -> bool (Value.as_int v <= 1000))));
  let db = Db.create sch in
  let ids = chain db 3 in
  let head = List.hd ids in
  ignore (Db.get db head "total");
  (match Db.set db (List.nth ids 2) "local" (int 5000) with
  | () -> Alcotest.fail "expected constraint violation"
  | exception Errors.Constraint_violation { message; _ } ->
    Alcotest.(check string) "message" "total exceeds 1000" message);
  check_value "rolled back" "3" (vstr (Db.get db head "total"))

let test_constraint_recovery () =
  let sch = milestone_schema () in
  Schema.add_attr sch ~type_name:"node"
    (Rule.constraint_attr "local_ok" ~recovery:"clamp" ~message:"local too big"
       (Rule.map1 "local" (fun v -> bool (Value.as_int v <= 100))));
  let db = Db.create sch in
  Db.register_recovery db "clamp" (fun _store id -> [ (id, "local", int 100) ]);
  let ids = chain db 2 in
  Db.set db (List.hd ids) "local" (int 500);
  check_value "recovered" "100" (vstr (Db.get db (List.hd ids) "local"))

let cyclic_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "n";
  Schema.declare_relationship sch ~from_type:"n" ~rel:"next" ~to_type:"n" ~inverse:"prev"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"n" (Rule.intrinsic "seed" (int 0));
  Schema.add_attr sch ~type_name:"n"
    (Rule.derived "v"
       (Rule.combine_self_rel "seed" "next" "v" ~f:(fun own vs -> Value.add own (Value.sum vs))));
  sch

let test_cycle_detected () =
  let db = Db.create (cyclic_schema ()) in
  let a = Db.create_instance db "n" in
  let b = Db.create_instance db "n" in
  Db.link db ~from_id:a ~rel:"next" ~to_id:b;
  Db.link db ~from_id:b ~rel:"next" ~to_id:a;
  match Db.get db a "v" with
  | _ -> Alcotest.fail "expected cycle"
  | exception Errors.Cycle _ -> ()

let test_long_cycle_detected () =
  (* A 5-node cycle through the chunked evaluator, and recovery: breaking
     the cycle makes the attribute evaluable again. *)
  let db = Db.create (cyclic_schema ()) in
  let ids = Array.init 5 (fun _ -> Db.create_instance db "n") in
  for i = 0 to 4 do
    Db.link db ~from_id:ids.(i) ~rel:"next" ~to_id:ids.((i + 1) mod 5)
  done;
  (match Db.get db ids.(0) "v" with
  | _ -> Alcotest.fail "expected cycle"
  | exception Errors.Cycle participants ->
    Alcotest.(check bool) "cycle names participants" true (List.length participants >= 2));
  (* Break the cycle: values become computable. *)
  Db.unlink db ~from_id:ids.(4) ~rel:"next" ~to_id:ids.(0);
  Db.set db ids.(4) "seed" (int 7);
  Alcotest.(check string) "evaluable after break" "7" (vstr (Db.get db ids.(0) "v"))

let test_cycle_at_commit () =
  (* A watched attribute made cyclic by a link inside a transaction: the
     commit propagation detects it and the transaction rolls back. *)
  let db = Db.create (cyclic_schema ()) in
  let a = Db.create_instance db "n" in
  let b = Db.create_instance db "n" in
  Db.link db ~from_id:a ~rel:"next" ~to_id:b;
  Db.watch db a "v";
  ignore (Db.get db a "v");
  Db.begin_txn db;
  Db.link db ~from_id:b ~rel:"next" ~to_id:a;
  (match Db.commit db with
  | () -> Alcotest.fail "expected cycle at commit"
  | exception Errors.Cycle _ -> ());
  (* The offending link was rolled back with the transaction. *)
  Alcotest.(check (list Alcotest.int)) "link rolled back" [] (Db.related db b "next");
  Alcotest.(check string) "still consistent" "0" (vstr (Db.get db a "v"))

let test_subtype_membership () =
  let sch = milestone_schema () in
  Schema.add_subtype sch
    {
      Schema.sub_name = "heavy";
      parent = "node";
      predicate = Rule.map1 "local" (fun v -> bool (Value.as_int v >= 10));
      extra_attrs = [ Rule.intrinsic "note" (Value.Str "") ];
    };
  let db = Db.create sch in
  let a = Db.create_instance db "node" in
  let b = Db.create_instance db "node" in
  Db.set db b "local" (int 50);
  Alcotest.(check bool) "a not heavy" false (Db.in_subtype db a "heavy");
  Alcotest.(check bool) "b heavy" true (Db.in_subtype db b "heavy");
  Alcotest.(check (list Alcotest.int)) "members" [ b ] (Db.subtype_members db "heavy");
  (* Dynamic migration. *)
  Db.set db a "local" (int 11);
  Alcotest.(check bool) "a becomes heavy" true (Db.in_subtype db a "heavy")

let test_dynamic_attr_extension () =
  let db = Db.create (milestone_schema ()) in
  let ids = chain db 3 in
  let head = List.hd ids in
  ignore (Db.get db head "total");
  (* very_late added while instances exist; existing tools untouched. *)
  Db.add_attr db ~type_name:"node"
    (Rule.derived "very_late" (Rule.map1 "total" (fun v -> bool (Value.as_int v > 200))));
  Alcotest.(check bool) "not very late" false (Value.as_bool (Db.get db head "very_late"));
  Db.set db (List.nth ids 2) "local" (int 500);
  Alcotest.(check bool) "very late now" true (Value.as_bool (Db.get db head "very_late"))

let test_delete_and_undo_delete () =
  let db = Db.create (milestone_schema ()) in
  let ids = chain db 3 in
  let head = List.hd ids in
  let leaf = List.nth ids 2 in
  Db.set db leaf "local" (int 10);
  check_value "pre" "12" (vstr (Db.get db head "total"));
  Db.delete_instance db leaf;
  check_value "after delete" "2" (vstr (Db.get db head "total"));
  Db.undo_last db;
  check_value "undo delete restores value and links" "12" (vstr (Db.get db head "total"))

let test_versions () =
  let db = Db.create (milestone_schema ()) in
  let ids = chain db 3 in
  let head = List.hd ids in
  Db.tag db "v0";
  Db.set db (List.nth ids 2) "local" (int 10);
  Db.tag db "v1";
  Db.set db (List.nth ids 2) "local" (int 20);
  Db.tag db "v2";
  Db.checkout db "v0";
  check_value "at v0" "3" (vstr (Db.get db head "total"));
  Db.checkout db "v2";
  check_value "at v2" "22" (vstr (Db.get db head "total"));
  Db.checkout db "v1";
  check_value "at v1" "12" (vstr (Db.get db head "total"))

let strategies =
  [ ("cactis", Engine.Cactis); ("eager", Engine.Eager_triggers);
    ("recompute-all", Engine.Recompute_all) ]

let test_strategies_agree () =
  List.iter
    (fun (_name, strategy) ->
      let db = Db.create ~strategy (milestone_schema ()) in
      let ids = chain db 8 in
      Db.set db (List.nth ids 5) "local" (int 30);
      List.iter
        (fun id ->
          let got = Db.get db id "total" in
          let want = Engine.oracle_value (Db.engine db) id "total" in
          check_value (Printf.sprintf "strategy agreement node %d" id) (vstr want) (vstr got))
        ids)
    strategies

let () =
  Alcotest.run "cactis-core"
    [
      ( "engine",
        [
          Alcotest.test_case "basic derivation" `Quick test_basic_derivation;
          Alcotest.test_case "incremental eval counts" `Quick test_incremental_counts;
          Alcotest.test_case "laziness" `Quick test_lazy_unimportant;
          Alcotest.test_case "redundant change O(1)" `Quick test_redundant_change_cutoff;
          Alcotest.test_case "oracle agreement" `Quick test_oracle_agreement;
          Alcotest.test_case "cycle detection" `Quick test_cycle_detected;
          Alcotest.test_case "long cycle + recovery" `Quick test_long_cycle_detected;
          Alcotest.test_case "cycle at commit rolls back" `Quick test_cycle_at_commit;
          Alcotest.test_case "strategies agree" `Quick test_strategies_agree;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "undo/redo" `Quick test_undo_restores;
          Alcotest.test_case "abort" `Quick test_txn_abort;
          Alcotest.test_case "constraint rollback" `Quick test_constraint_rollback;
          Alcotest.test_case "constraint recovery" `Quick test_constraint_recovery;
          Alcotest.test_case "delete & undo" `Quick test_delete_and_undo_delete;
          Alcotest.test_case "versions" `Quick test_versions;
        ] );
      ( "schema",
        [
          Alcotest.test_case "subtype membership" `Quick test_subtype_membership;
          Alcotest.test_case "dynamic extension" `Quick test_dynamic_attr_extension;
        ] );
    ]
