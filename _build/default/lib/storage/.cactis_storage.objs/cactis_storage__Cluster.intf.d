lib/storage/cluster.mli: Hashtbl
