(** Attribute-driven user-interface demo (§4, last example).

    The paper's Higgens-style presentation system composes display
    fragments with attribute evaluation rules so "the user interface
    automatically reflects the state of the underlying data regardless of
    how it is modified".  We reproduce the mechanism at its core: widgets
    form a tree; each widget's [display] string is a derived attribute
    composed from its own data and its children's [display] values; the
    screen is the root's [display].  Because rendering is derived data,
    only the widgets on the path from a change to the root re-render —
    observable through the engine's rule-evaluation counters. *)

type t

val create : unit -> t

val db : t -> Cactis.Db.t

(** [add_label t ~parent ~text] — leaf widget.  [parent = None] creates
    the root (only one root allowed). *)
val add_label : t -> parent:int option -> text:string -> int

(** [add_box t ~parent ~title] — container widget. *)
val add_box : t -> parent:int option -> title:string -> int

val set_text : t -> int -> string -> unit
val set_title : t -> int -> string -> unit

(** Current rendering of the widget subtree. *)
val render : t -> int -> string

(** Rendering of the root widget. *)
val render_root : t -> string

(** Rule evaluations spent inside the last {!render_root} call — the
    "only the changed path re-renders" observable. *)
val last_render_evals : t -> int
