(* Make facility (Figures 2-4): dependency-driven minimal recompilation
   over a simulated filesystem, including the "keep constantly up to
   date" subtype variant from §4.

   Run with: dune exec examples/make_tool.exe *)

module Fs = Cactis_apps.Fs_sim
module Mk = Cactis_apps.Makefac

let show_run label cmds =
  Printf.printf "%s\n" label;
  (match cmds with
  | [] -> print_endline "  (nothing to do)"
  | _ -> List.iter (fun c -> Printf.printf "  $ %s\n" c) cmds);
  print_newline ()

let () =
  let fs = Fs.create () in
  List.iter
    (fun (f, c) -> Fs.write_file fs f c)
    [
      ("lexer.c", "...");
      ("parser.c", "...");
      ("eval.c", "...");
      ("util.h", "...");
    ];
  let mk = Mk.create fs in
  let src f = Mk.add_rule mk ~file:f ~command:"" in
  let lexer_c = src "lexer.c"
  and parser_c = src "parser.c"
  and eval_c = src "eval.c"
  and util_h = src "util.h" in
  let obj name deps =
    let o = Mk.add_rule mk ~file:(name ^ ".o") ~command:(Printf.sprintf "cc -c %s.c -o %s.o" name name) in
    List.iter (fun d -> Mk.add_dependency mk ~rule:o ~on:d) deps;
    o
  in
  let lexer_o = obj "lexer" [ lexer_c; util_h ] in
  let parser_o = obj "parser" [ parser_c; util_h ] in
  let eval_o = obj "eval" [ eval_c ] in
  let interp = Mk.add_rule mk ~file:"interp" ~command:"cc lexer.o parser.o eval.o -o interp" in
  List.iter (fun d -> Mk.add_dependency mk ~rule:interp ~on:d) [ lexer_o; parser_o; eval_o ];

  show_run "== first build (everything stale) ==" (Mk.build mk interp);
  show_run "== immediate rebuild ==" (Mk.build mk interp);

  Fs.touch fs "parser.c";
  Mk.sync mk;
  show_run "== after editing parser.c ==" (Mk.build mk interp);

  Fs.touch fs "util.h";
  Mk.sync mk;
  show_run "== after editing util.h (both dependents) ==" (Mk.build mk interp);

  (* §4's extension: a rule that insists on staying current. *)
  Mk.enable_keep_current mk interp;
  Fs.touch fs "eval.c";
  show_run "== auto_build with keep-current interp ==" (Mk.auto_build mk);

  print_endline "command journal:";
  List.iter (fun c -> Printf.printf "  %s\n" c) (Fs.journal fs)
