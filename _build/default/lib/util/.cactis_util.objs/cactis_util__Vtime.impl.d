lib/util/vtime.ml: Float Format
