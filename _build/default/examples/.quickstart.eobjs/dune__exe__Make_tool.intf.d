examples/make_tool.mli:
