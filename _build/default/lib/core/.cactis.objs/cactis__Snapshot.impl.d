lib/core/snapshot.ml: Array Buffer Cactis_util Char Db Engine Format Instance List Printf Schema Store String Value
