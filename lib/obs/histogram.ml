(* Bucket i covers [2^(i-1), 2^i) microseconds; bucket 0 is everything
   under 1us.  64 buckets reach ~292 years, so clamping at the top is
   theoretical. *)
let buckets = 64

type h = {
  counts : int array;
  mutable n : int;
  mutable sum : float;  (* seconds *)
  mutable max : float;  (* seconds *)
}

(* Like Counters, the registry is sharded per domain: [cell] returns a
   histogram private to the calling domain so [observe] stays a plain
   (race-free) array increment, and [snapshot] merges shards by name —
   bucket counts sum, maxima max.  Single-domain programs see exactly
   one shard and bit-identical statistics to the unsharded registry. *)
type t = {
  mu : Mutex.t;
  mutable shards : (int * (string, h) Hashtbl.t) list;  (* domain id -> shard *)
}

type stats = {
  st_name : string;
  st_count : int;
  st_sum : float;
  st_mean : float;
  st_p50 : float;
  st_p95 : float;
  st_p99 : float;
  st_max : float;
}

let create () : t = { mu = Mutex.create (); shards = [] }

let with_lock t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    Mutex.unlock t.mu;
    v
  | exception e ->
    Mutex.unlock t.mu;
    raise e

let fresh_h () = { counts = Array.make buckets 0; n = 0; sum = 0.0; max = 0.0 }

let shard t =
  let did = (Domain.self () :> int) in
  with_lock t (fun () ->
      match List.assoc_opt did t.shards with
      | Some s -> s
      | None ->
        let s = Hashtbl.create 16 in
        t.shards <- (did, s) :: t.shards;
        s)

let cell t name =
  let s = shard t in
  match Hashtbl.find_opt s name with
  | Some h -> h
  | None ->
    (* Snapshot iterates this shard from other domains; guard the
       structural insert. *)
    with_lock t (fun () ->
        match Hashtbl.find_opt s name with
        | Some h -> h
        | None ->
          let h = fresh_h () in
          Hashtbl.add s name h;
          h)

let bucket_of seconds =
  let us = seconds *. 1e6 in
  if us < 1.0 then 0
  else begin
    (* frexp gives the base-2 exponent directly: us in [2^(e-1), 2^e). *)
    let _, e = Float.frexp us in
    min (buckets - 1) (max 0 e)
  end

let observe h seconds =
  let seconds = if Float.is_finite seconds && seconds > 0.0 then seconds else 0.0 in
  h.counts.(bucket_of seconds) <- h.counts.(bucket_of seconds) + 1;
  h.n <- h.n + 1;
  h.sum <- h.sum +. seconds;
  if seconds > h.max then h.max <- seconds

let observe_named t name seconds = observe (cell t name) seconds

let count h = h.n
let sum h = h.sum
let max_value h = h.max
let num_buckets = buckets
let bucket_counts h = Array.copy h.counts

(* Upper bound of bucket i in seconds. *)
let upper i = Float.ldexp 1.0 i *. 1e-6
let bucket_upper = upper

let quantile h q =
  if h.n = 0 then 0.0
  else begin
    let rank = Float.to_int (Float.of_int h.n *. q +. 0.5) in
    let rank = max 1 (min h.n rank) in
    let rec find i acc =
      if i >= buckets then h.max
      else
        let acc = acc + h.counts.(i) in
        if acc >= rank then
          if i = 0 then 0.5e-6
          else
            (* Geometric midpoint of [2^(i-1), 2^i) us. *)
            Float.min h.max (upper i /. Float.sqrt 2.0)
        else find (i + 1) acc
    in
    find 0 0
  end

let stats name h =
  {
    st_name = name;
    st_count = h.n;
    st_sum = h.sum;
    st_mean = (if h.n = 0 then 0.0 else h.sum /. Float.of_int h.n);
    st_p50 = quantile h 0.50;
    st_p95 = quantile h 0.95;
    st_p99 = quantile h 0.99;
    st_max = h.max;
  }

(* Merge-on-read: one combined histogram per name across all shards. *)
let merged t =
  with_lock t (fun () ->
      let acc = Hashtbl.create 16 in
      List.iter
        (fun (_, s) ->
          Hashtbl.iter
            (fun name h ->
              let m =
                match Hashtbl.find_opt acc name with
                | Some m -> m
                | None ->
                  let m = fresh_h () in
                  Hashtbl.add acc name m;
                  m
              in
              for i = 0 to buckets - 1 do
                m.counts.(i) <- m.counts.(i) + h.counts.(i)
              done;
              m.n <- m.n + h.n;
              m.sum <- m.sum +. h.sum;
              if h.max > m.max then m.max <- h.max)
            s)
        t.shards;
      acc)

let snapshot t =
  Hashtbl.fold (fun name h acc -> if h.n > 0 then stats name h :: acc else acc) (merged t) []
  |> List.sort (fun a b -> String.compare a.st_name b.st_name)

let merged_cells t =
  Hashtbl.fold (fun name h acc -> if h.n > 0 then (name, h) :: acc else acc) (merged t) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let reset t =
  (* Zeroes every shard's cells in place, so cached cells stay valid. *)
  with_lock t (fun () ->
      List.iter
        (fun (_, s) ->
          Hashtbl.iter
            (fun _ h ->
              Array.fill h.counts 0 buckets 0;
              h.n <- 0;
              h.sum <- 0.0;
              h.max <- 0.0)
            s)
        t.shards)
