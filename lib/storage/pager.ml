type t = {
  block_cap : int;
  disk_dev : Disk.t;
  buffer : Buffer_pool.t;
  (* Block of each instance id, -1 when unplaced.  Ids are small dense
     ints; a flat array keeps the per-touch placement lookup at one load
     on the hot path. *)
  mutable placement : int array;
  mutable tail_block : int;
  mutable tail_used : int;
}

let create ?(block_capacity = 8) ?(buffer_capacity = 64) () =
  if block_capacity < 1 then invalid_arg "Pager.create: block_capacity must be >= 1";
  let disk_dev = Disk.create () in
  {
    block_cap = block_capacity;
    disk_dev;
    buffer = Buffer_pool.create ~capacity:buffer_capacity disk_dev;
    placement = Array.make 256 (-1);
    tail_block = 0;
    tail_used = 0;
  }

let ensure t id =
  let n = Array.length t.placement in
  if id >= n then begin
    let bigger = Array.make (max (id + 1) (2 * n)) (-1) in
    Array.blit t.placement 0 bigger 0 n;
    t.placement <- bigger
  end

let register t id =
  ensure t id;
  if t.placement.(id) < 0 then begin
    if t.tail_used >= t.block_cap then begin
      t.tail_block <- t.tail_block + 1;
      t.tail_used <- 0
    end;
    t.placement.(id) <- t.tail_block;
    t.tail_used <- t.tail_used + 1
  end

let forget t id = if id < Array.length t.placement then t.placement.(id) <- -1

let block_of t id =
  if id < Array.length t.placement && t.placement.(id) >= 0 then Some t.placement.(id) else None

let touch t id =
  let block =
    if id < Array.length t.placement && t.placement.(id) >= 0 then t.placement.(id)
    else begin
      register t id;
      t.placement.(id)
    end
  in
  Buffer_pool.touch t.buffer block

let resident t id =
  id < Array.length t.placement
  && t.placement.(id) >= 0
  && Buffer_pool.resident t.buffer t.placement.(id)

let apply_clustering t (assignment : Cluster.assignment) =
  Array.fill t.placement 0 (Array.length t.placement) (-1);
  Hashtbl.iter
    (fun id block ->
      ensure t id;
      t.placement.(id) <- block)
    assignment.Cluster.block_of;
  (* New instances created after re-clustering go to fresh blocks. *)
  t.tail_block <- assignment.Cluster.block_count;
  t.tail_used <- 0;
  Buffer_pool.flush t.buffer

let disk t = t.disk_dev
let pool t = t.buffer
let block_capacity t = t.block_cap

let instances t =
  let acc = ref [] in
  Array.iteri (fun id b -> if b >= 0 then acc := id :: !acc) t.placement;
  !acc

let reset_io t =
  Disk.reset t.disk_dev;
  Buffer_pool.reset_stats t.buffer;
  Buffer_pool.flush t.buffer
