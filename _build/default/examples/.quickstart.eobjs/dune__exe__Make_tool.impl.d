examples/make_tool.ml: Cactis_apps List Printf
