(* Utility substrate tests: Rng, Pqueue, Decaying_avg, Counters, Vtime,
   Ascii_table — unit tests plus qcheck properties on the heap. *)

module Rng = Cactis_util.Rng
module Pqueue = Cactis_util.Pqueue
module Decaying_avg = Cactis_util.Decaying_avg
module Counters = Cactis_util.Counters
module Vtime = Cactis_util.Vtime
module Table = Cactis_util.Ascii_table

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Rng.int a 1_000_000) (Rng.int b 1_000_000)
  done

let test_rng_bounds () =
  let r = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (v >= 0 && v < 10);
    let w = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in [-5,5]" true (w >= -5 && w <= 5);
    let f = Rng.float r 2.0 in
    Alcotest.(check bool) "float in [0,2)" true (f >= 0.0 && f < 2.0)
  done

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let r = Rng.create 3 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle r arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_zipf_skew () =
  let r = Rng.create 9 in
  let counts = Array.make 10 0 in
  for _ = 1 to 5000 do
    let k = Rng.zipf r 10 1.0 in
    counts.(k) <- counts.(k) + 1
  done;
  Alcotest.(check bool) "rank 0 hottest" true (counts.(0) > counts.(9));
  Alcotest.(check bool) "rank 0 dominates" true (counts.(0) > 2 * counts.(5))

(* ---- Pqueue ---- *)

let test_pqueue_order () =
  let q = Pqueue.create () in
  List.iter (fun (p, x) -> Pqueue.push q p x) [ (3.0, "c"); (1.0, "a"); (2.0, "b"); (0.5, "z") ];
  let order = List.init 4 (fun _ -> Pqueue.pop q) in
  Alcotest.(check (list string)) "ascending priority" [ "z"; "a"; "b"; "c" ] order;
  Alcotest.(check bool) "now empty" true (Pqueue.is_empty q)

let test_pqueue_empty () =
  let q : int Pqueue.t = Pqueue.create () in
  Alcotest.(check bool) "pop_opt empty" true (Pqueue.pop_opt q = None);
  (match Pqueue.pop q with
  | _ -> Alcotest.fail "expected Not_found"
  | exception Not_found -> ());
  Alcotest.(check bool) "peek empty" true (Pqueue.peek_priority q = None)

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue pops in priority order" ~count:200
    QCheck.(list (float_range (-100.0) 100.0))
    (fun ps ->
      let q = Pqueue.create () in
      List.iter (fun p -> Pqueue.push q p p) ps;
      let rec collect acc =
        match Pqueue.pop_opt q with
        | None -> List.rev acc
        | Some p -> collect (p :: acc)
      in
      collect [] = List.sort compare ps)

let prop_pqueue_length =
  QCheck.Test.make ~name:"pqueue length tracks pushes and pops" ~count:200
    QCheck.(list (float_range 0.0 10.0))
    (fun ps ->
      let q = Pqueue.create () in
      List.iteri (fun i p -> Pqueue.push q p i) ps;
      let n = List.length ps in
      Pqueue.length q = n
      &&
      let rec pop_k k = if k = 0 then true else (ignore (Pqueue.pop q); pop_k (k - 1)) in
      pop_k (n / 2) && Pqueue.length q = n - (n / 2))

(* ---- Decaying_avg ---- *)

let test_decaying_avg_converges () =
  let d = Decaying_avg.create ~alpha:0.5 ~initial:100.0 () in
  for _ = 1 to 50 do
    Decaying_avg.observe d 2.0
  done;
  Alcotest.(check bool) "converges to observations" true
    (abs_float (Decaying_avg.value d -. 2.0) < 0.01);
  Alcotest.(check int) "counts observations" 50 (Decaying_avg.observations d);
  Decaying_avg.reset d ~initial:7.0;
  Alcotest.(check (float 1e-9)) "reset" 7.0 (Decaying_avg.value d);
  Alcotest.(check int) "reset count" 0 (Decaying_avg.observations d)

let test_decaying_avg_recency () =
  let d = Decaying_avg.create ~alpha:0.25 ~initial:0.0 () in
  List.iter (Decaying_avg.observe d) [ 10.0; 10.0; 10.0; 10.0 ];
  let after_tens = Decaying_avg.value d in
  List.iter (Decaying_avg.observe d) [ 0.0; 0.0; 0.0; 0.0 ];
  Alcotest.(check bool) "recent observations dominate" true
    (Decaying_avg.value d < after_tens /. 2.0)

(* ---- Counters ---- *)

let test_counters () =
  let c = Counters.create () in
  Counters.incr c "a";
  Counters.incr c "a";
  Counters.add c "b" 5;
  Alcotest.(check int) "a" 2 (Counters.get c "a");
  Alcotest.(check int) "b" 5 (Counters.get c "b");
  Alcotest.(check int) "absent" 0 (Counters.get c "zzz");
  let snap1 = Counters.snapshot c in
  Counters.add c "a" 3;
  let snap2 = Counters.snapshot c in
  let d = Counters.diff ~before:snap1 ~after:snap2 in
  Alcotest.(check int) "diff a" 3 (List.assoc "a" d);
  Alcotest.(check int) "diff b" 0 (List.assoc "b" d);
  Counters.reset c;
  Alcotest.(check int) "reset" 0 (Counters.get c "a")

(* Counters seen only on one side of a diff: new names count from 0,
   names that disappeared (e.g. across a reset) report their negative
   delta instead of being dropped. *)
let test_counters_diff_asymmetric () =
  let d =
    Counters.diff ~before:[ ("gone", 4); ("kept", 2) ] ~after:[ ("kept", 5); ("new", 7) ]
  in
  Alcotest.(check int) "only in before -> negative" (-4) (List.assoc "gone" d);
  Alcotest.(check int) "present in both" 3 (List.assoc "kept" d);
  Alcotest.(check int) "only in after -> from 0" 7 (List.assoc "new" d);
  Alcotest.(check (list string)) "sorted by name" [ "gone"; "kept"; "new" ] (List.map fst d)

(* ---- Vtime ---- *)

let test_vtime () =
  let t1 = Vtime.of_days 3.0 and t2 = Vtime.of_days 5.0 in
  Alcotest.(check bool) "later_than" true (Vtime.later_than t2 t1);
  Alcotest.(check bool) "not later" false (Vtime.later_than t1 t2);
  Alcotest.(check (float 1e-9)) "later_of" 5.0 (Vtime.to_days (Vtime.later_of t1 t2));
  Alcotest.(check (float 1e-9)) "earlier_of" 3.0 (Vtime.to_days (Vtime.earlier_of t1 t2));
  Alcotest.(check (float 1e-9)) "add" 4.5 (Vtime.to_days (Vtime.add_days t1 1.5));
  Alcotest.(check bool) "far future beats all" true (Vtime.later_than Vtime.far_future t2);
  Alcotest.(check string) "pp far future" "far-future" (Vtime.to_string Vtime.far_future)

(* ---- Ascii_table ---- *)

let test_table_render () =
  let s = Table.render ~headers:[ "name"; "n" ] [ [ "alpha"; "1" ]; [ "b"; "22" ] ] in
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  Alcotest.(check int) "header + sep + 2 rows" 4 (List.length lines);
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_fmt () =
  Alcotest.(check string) "ratio" "2.0x" (Table.fmt_ratio 10.0 5.0);
  Alcotest.(check string) "ratio div0" "-" (Table.fmt_ratio 10.0 0.0);
  Alcotest.(check string) "int" "42" (Table.fmt_int 42)

let qcheck_cases = List.map QCheck_alcotest.to_alcotest [ prop_pqueue_sorts; prop_pqueue_length ]

let () =
  Alcotest.run "cactis-util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "zipf skew" `Quick test_rng_zipf_skew;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "order" `Quick test_pqueue_order;
          Alcotest.test_case "empty" `Quick test_pqueue_empty;
        ]
        @ qcheck_cases );
      ( "decaying-avg",
        [
          Alcotest.test_case "converges" `Quick test_decaying_avg_converges;
          Alcotest.test_case "recency" `Quick test_decaying_avg_recency;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basics" `Quick test_counters;
          Alcotest.test_case "asymmetric diff" `Quick test_counters_diff_asymmetric;
        ] );
      ("vtime", [ Alcotest.test_case "basics" `Quick test_vtime ]);
      ( "ascii-table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "formatters" `Quick test_table_fmt;
        ] );
    ]
