bin/cactis_cli.mli:
