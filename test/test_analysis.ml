(* The static schema analyzer: circularity with witnesses, dead-rule,
   dangling-reference and constraint lint — over DDL sources
   (Cactis_ddl.Lint), compiled schemas (Cactis_analysis.Analyze), the
   Schema.validate/strict hooks, and the Elaborate gate.  Two QCheck
   properties tie the static verdict to the engine's dynamic behaviour:
   a clean circularity verdict really does rule out Errors.Cycle on
   arbitrary (even cyclic) instance graphs. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Errors = Cactis.Errors
module Rng = Cactis_util.Rng
module Diag = Cactis_analysis.Diag
module Analyze = Cactis_analysis.Analyze
module Lint = Cactis_ddl.Lint

let lint src = Lint.analyze_ast (Cactis_ddl.Parser.parse_schema src)

let codes ds = List.map (fun d -> d.Diag.code) ds
let with_code c ds = List.filter (fun d -> String.equal d.Diag.code c) ds
let has_code c ds = with_code c ds <> []

let severity_of c ds =
  match with_code c ds with
  | d :: _ -> Some d.Diag.severity
  | [] -> None

let check_codes what expected ds =
  Alcotest.(check (list string)) what expected (List.sort_uniq compare (codes ds))

(* A little well-formed base schema most cases extend. *)
let base_class body = Printf.sprintf "object class node is\n%s\nend object;\n" body

(* ---- circularity ---- *)

let test_self_cycle_error () =
  (* r1 and r2 read each other within one instance: no evaluation order
     exists for any instance — error, with a two-node witness. *)
  let ds =
    lint
      (base_class
         "  attributes\n    a : int;\n  rules\n    r1 = r2 + 1;\n    r2 = r1 + a;")
  in
  Alcotest.(check (option string)) "error severity" (Some "error")
    (Option.map Diag.severity_name (severity_of "cycle" ds));
  let d = List.hd (with_code "cycle" ds) in
  Alcotest.(check int) "witness length" 2 (List.length d.Diag.witness);
  List.iter
    (fun ((n : Diag.node), step) ->
      Alcotest.(check string) "witness type" "node" n.Diag.n_type;
      Alcotest.(check bool) "self steps only" true (step = Diag.S_self);
      Alcotest.(check bool) "witness names a declared rule" true
        (List.mem n.Diag.n_attr [ "r1"; "r2" ]))
    d.Diag.witness

let test_link_cycle_error () =
  (* rx reads ry across down, ry reads rx back across up: the two steps
     retrace one link, so a single link cycles — error, not warning. *)
  let ds =
    lint
      (base_class
         "  relationships\n\
         \    down : node multi socket inverse up;\n\
         \    up : node multi plug inverse down;\n\
         \  attributes\n\
         \    a : int;\n\
         \  rules\n\
         \    rx = sum(down.ry default 0);\n\
         \    ry = sum(up.rx default 0);")
  in
  Alcotest.(check (option string)) "error severity" (Some "error")
    (Option.map Diag.severity_name (severity_of "cycle" ds))

let test_potential_cycle_warning () =
  (* rx reads its own attribute across down: cycles only when the data
     cycles along down — warning, witness crossing down. *)
  let ds =
    lint
      (base_class
         "  relationships\n\
         \    down : node multi socket inverse up;\n\
         \    up : node multi plug inverse down;\n\
         \  attributes\n\
         \    a : int;\n\
         \  rules\n\
         \    rx = a + sum(down.rx default 0);")
  in
  Alcotest.(check (option string)) "warning severity" (Some "warning")
    (Option.map Diag.severity_name (severity_of "potential-cycle" ds));
  Alcotest.(check bool) "no hard cycle" false (has_code "cycle" ds);
  let d = List.hd (with_code "potential-cycle" ds) in
  Alcotest.(check bool) "witness crosses down" true
    (List.exists (fun (_, s) -> s = Diag.S_rel "down") d.Diag.witness)

let test_acyclic_clean () =
  (* True negative: a chain of rules, including a cross-relationship read
     of an intrinsic, has no circularity finding of any severity. *)
  let ds =
    lint
      (base_class
         "  relationships\n\
         \    down : node multi socket inverse up;\n\
         \    up : node multi plug inverse down;\n\
         \  attributes\n\
         \    a : int;\n\
         \  rules\n\
         \    r1 = a + 1;\n\
         \    r2 = r1 + sum(down.a default 0);\n\
         \    r3 = r2 * 2;")
  in
  Alcotest.(check bool) "no cycle" false (has_code "cycle" ds);
  Alcotest.(check bool) "no potential cycle" false (has_code "potential-cycle" ds)

(* ---- dead attributes ---- *)

let test_dead_attr_info () =
  let ds =
    lint (base_class "  attributes\n    a : int;\n  rules\n    unused = a + 1;")
  in
  Alcotest.(check (option string)) "info severity" (Some "info")
    (Option.map Diag.severity_name (severity_of "dead-attr" ds));
  Alcotest.(check string) "names the attribute" "node.unused"
    (List.hd (with_code "dead-attr" ds)).Diag.path

let test_dead_attr_negatives () =
  (* Read by a rule, constraint-carrying, or transmitted: none is dead.
     (`top` itself is unread but constrained, `sent` is exported.) *)
  let ds =
    lint
      (base_class
         "  relationships\n\
         \    down : node multi socket inverse up;\n\
         \    up : node multi plug inverse down;\n\
         \  attributes\n\
         \    a : int;\n\
         \  rules\n\
         \    mid = a + 1;\n\
         \    sent = mid * 2;\n\
         \  constraints\n\
         \    top = mid > 0 message \"mid must be positive\";\n\
         \  transmits\n\
         \    up.exported = sent;")
  in
  Alcotest.(check bool) "no dead attrs" false (has_code "dead-attr" ds)

let test_dead_attr_subtype_predicate_reads () =
  (* An attribute read only by a subtype predicate is not dead. *)
  let ds =
    lint
      (base_class "  attributes\n    a : int;\n  rules\n    r = a + 1;"
      ^ "subtype big of node where r > 10 is\nend subtype;\n")
  in
  Alcotest.(check bool) "predicate read keeps r alive" false (has_code "dead-attr" ds)

(* ---- dangling references ---- *)

let test_dangling_attr_and_rel () =
  let ds =
    lint
      (base_class
         "  attributes\n    a : int;\n  rules\n    r1 = ghost + 1;\n    r2 = sum(phantom.a default 0);")
  in
  Alcotest.(check (option string)) "dangling attr is error" (Some "error")
    (Option.map Diag.severity_name (severity_of "dangling-attr" ds));
  Alcotest.(check (option string)) "dangling rel is error" (Some "error")
    (Option.map Diag.severity_name (severity_of "dangling-rel" ds))

let test_dangling_transmission_warning () =
  (* Reading an attribute the target does not declare: the paper treats
     this as extensibility (the attribute may arrive later), and the
     engine defers it to link traversal — warning, not error. *)
  let ds =
    lint
      (base_class
         "  relationships\n\
         \    down : node multi socket inverse up;\n\
         \    up : node multi plug inverse down;\n\
         \  attributes\n\
         \    a : int;\n\
         \  rules\n\
         \    r = sum(down.future default 0);")
  in
  Alcotest.(check (option string)) "transmission gap is warning" (Some "warning")
    (Option.map Diag.severity_name (severity_of "dangling-transmission" ds))

let test_dangling_rel_wiring () =
  let ds =
    lint
      "object class a is\n\
      \  relationships\n\
      \    to_ghost : ghost multi socket inverse back;\n\
      \    to_b : b multi socket inverse wrong;\n\
      \  attributes\n\
      \    x : int;\n\
       end object;\n\
       object class b is\n\
      \  attributes\n\
      \    y : int;\n\
       end object;\n"
  in
  Alcotest.(check (option string)) "unknown target class" (Some "error")
    (Option.map Diag.severity_name (severity_of "dangling-target" ds));
  Alcotest.(check (option string)) "undeclared inverse" (Some "error")
    (Option.map Diag.severity_name (severity_of "dangling-inverse" ds))

let test_dangling_export_and_parent () =
  let ds =
    lint
      (base_class
         "  relationships\n\
         \    down : node multi socket inverse up;\n\
         \    up : node multi plug inverse down;\n\
         \  attributes\n\
         \    a : int;\n\
         \  transmits\n\
         \    up.exported = ghost;"
      ^ "subtype orphan of nowhere where 1 > 0 is\nend subtype;\n")
  in
  Alcotest.(check (option string)) "export of unknown attr" (Some "error")
    (Option.map Diag.severity_name (severity_of "dangling-export" ds));
  Alcotest.(check (option string)) "subtype of unknown parent" (Some "error")
    (Option.map Diag.severity_name (severity_of "dangling-parent" ds))

let test_subtype_predicate_dangling () =
  (* Predicate over an attribute the parent does not declare. *)
  let ds =
    lint
      (base_class "  attributes\n    a : int;"
      ^ "subtype big of node where missing > 10 is\nend subtype;\n")
  in
  let d = List.hd (with_code "dangling-attr" ds) in
  Alcotest.(check (option string)) "is error" (Some "error")
    (Option.map Diag.severity_name (severity_of "dangling-attr" ds));
  Alcotest.(check bool) "message blames the predicate" true
    (String.length d.Diag.message > 0
    &&
    let sub = "subtype big predicate" in
    let n = String.length d.Diag.message and m = String.length sub in
    let rec go i = i + m <= n && (String.sub d.Diag.message i m = sub || go (i + 1)) in
    go 0)

let test_dangling_negative () =
  (* True negative: everything resolves (including through an alias). *)
  let ds =
    lint
      (base_class
         "  relationships\n\
         \    down : node multi socket inverse up;\n\
         \    up : node multi plug inverse down;\n\
         \  attributes\n\
         \    a : int;\n\
         \  rules\n\
         \    r = sum(down.exported default 0);\n\
         \  transmits\n\
         \    up.exported = a;")
  in
  check_codes "only clean codes" [] (with_code "dangling-attr" ds @ with_code "dangling-rel" ds
    @ with_code "dangling-transmission" ds @ with_code "dangling-target" ds
    @ with_code "dangling-inverse" ds @ with_code "dangling-export" ds)

(* ---- constraint lint ---- *)

let test_constraint_constant () =
  let ds =
    lint
      (base_class
         "  attributes\n    a : int;\n  rules\n    two = 1 + 1;\n  constraints\n    always = two > 0 message \"always true\";")
  in
  Alcotest.(check (option string)) "constant constraint is warning" (Some "warning")
    (Option.map Diag.severity_name (severity_of "constraint-constant" ds))

let test_constraint_topology_only () =
  let ds =
    lint
      (base_class
         "  relationships\n\
         \    down : node multi socket inverse up;\n\
         \    up : node multi plug inverse down;\n\
         \  attributes\n\
         \    a : int;\n\
         \  rules\n\
         \    two = 1 + 1;\n\
         \  constraints\n\
         \    shaped = count(down.two) > 0 message \"needs children\";")
  in
  Alcotest.(check (option string)) "topology-only constraint is info" (Some "info")
    (Option.map Diag.severity_name (severity_of "constraint-topology-only" ds));
  Alcotest.(check bool) "not flagged constant" false (has_code "constraint-constant" ds)

let test_constraint_negative () =
  (* True negative: the constraint's cone reaches an intrinsic. *)
  let ds =
    lint
      (base_class
         "  attributes\n    a : int;\n  rules\n    r = a + 1;\n  constraints\n    ok = r > 0 message \"must be positive\";")
  in
  Alcotest.(check bool) "no constant finding" false (has_code "constraint-constant" ds);
  Alcotest.(check bool) "no topology finding" false (has_code "constraint-topology-only" ds)

(* ---- AST-level duplicates ---- *)

let test_duplicates () =
  let ds =
    lint
      "object class a is\n  attributes\n    x : int;\n  rules\n    x = 1 + 1;\nend object;\n\
       object class a is\n  attributes\n    y : int;\nend object;\n"
  in
  Alcotest.(check (option string)) "duplicate class" (Some "error")
    (Option.map Diag.severity_name (severity_of "duplicate-class" ds));
  Alcotest.(check (option string)) "duplicate attr" (Some "error")
    (Option.map Diag.severity_name (severity_of "duplicate-attr" ds))

(* ---- shipped schemas ---- *)

let test_shipped_schemas_error_free () =
  let shipped =
    [
      ("milestone", Db.schema (Cactis_apps.Milestone.db (Cactis_apps.Milestone.create ())));
      ("configman", Db.schema (Cactis_apps.Configman.db (Cactis_apps.Configman.create ())));
      ("traceability", Db.schema (Cactis_apps.Traceability.db (Cactis_apps.Traceability.create ())));
      ("makefac", Db.schema (Cactis_apps.Makefac.db (Cactis_apps.Makefac.create (Cactis_apps.Fs_sim.create ()))));
      ("uidemo", Db.schema (Cactis_apps.Uidemo.db (Cactis_apps.Uidemo.create ())));
      ("flowan", Cactis_apps.Flowan.schema ());
    ]
  in
  List.iter
    (fun (name, sch) ->
      Alcotest.(check (list string)) (name ^ " has no errors") []
        (List.map Diag.to_string (Diag.errors (Analyze.analyze_schema sch))))
    shipped

let test_flowan_flagged_with_witness () =
  let ds = Cactis_apps.Flowan.static_diagnostics () in
  let pc = with_code "potential-cycle" ds in
  Alcotest.(check int) "liveness and reaching both flagged" 2 (List.length pc);
  List.iter
    (fun d ->
      Alcotest.(check bool) "witness non-empty" true (d.Diag.witness <> []);
      List.iter
        (fun ((n : Diag.node), _) ->
          Alcotest.(check string) "witness on flow_node" "flow_node" n.Diag.n_type;
          (* Every witness node is a real declared attribute. *)
          Alcotest.(check bool)
            (n.Diag.n_attr ^ " declared") true
            (Schema.attr_opt (Cactis_apps.Flowan.schema ()) ~type_name:"flow_node" n.Diag.n_attr
            <> None))
        d.Diag.witness)
    pc

(* ---- hooks: Schema.validate / strict mode / Elaborate gate ---- *)

(* Self sources are checked eagerly by add_attr (no forward refs), so a
   constructible hard cycle goes through a relationship pair: rx reads
   ry across down, ry reads rx back across up — one link realizes it. *)
let add_link_cycle sch =
  Schema.add_attr sch ~type_name:"t"
    (Rule.derived "rx"
       (Rule.make [ Schema.Rel ("down", "ry") ] (fun env ->
            Value.sum (env.Schema.related_values "down" "ry"))));
  Schema.add_attr sch ~type_name:"t"
    (Rule.derived "ry"
       (Rule.make [ Schema.Rel ("up", "rx") ] (fun env ->
            Value.sum (env.Schema.related_values "up" "rx"))))

let cyclic_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "t";
  Schema.declare_relationship sch ~from_type:"t" ~rel:"down" ~to_type:"t" ~inverse:"up"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"t" (Rule.intrinsic "a" (Value.Int 0));
  add_link_cycle sch;
  sch

let test_validate_hook () =
  Analyze.install ();
  let sch = cyclic_schema () in
  (match Schema.validate sch with
  | () -> Alcotest.fail "expected Type_error from validate"
  | exception Errors.Type_error _ -> ());
  (* A clean schema validates fine. *)
  let ok = Schema.create () in
  Schema.add_type ok "t";
  Schema.add_attr ok ~type_name:"t" (Rule.intrinsic "a" (Value.Int 0));
  Schema.validate ok

let test_strict_mode () =
  Analyze.install ();
  let sch = Schema.create () in
  Schema.add_type sch "t";
  Schema.declare_relationship sch ~from_type:"t" ~rel:"down" ~to_type:"t" ~inverse:"up"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"t" (Rule.intrinsic "a" (Value.Int 0));
  Schema.set_strict sch true;
  let db = Db.create sch in
  let id = Db.create_instance db "t" in
  ignore (Db.get db ~watch:false id "a");
  (* A mutation that introduces a hard cycle is caught at the next
     schema access — and keeps failing until repaired. *)
  add_link_cycle sch;
  (match Db.get db ~watch:false id "a" with
  | _ -> Alcotest.fail "strict mode let a cyclic schema through"
  | exception Errors.Type_error _ -> ());
  match Db.get db ~watch:false id "a" with
  | _ -> Alcotest.fail "second access should fail too"
  | exception Errors.Type_error _ -> ()

let test_elaborate_gate () =
  (* A Self cycle is rejected during elaboration itself (no forward Self
     refs), so gate on the link-realizable cycle the elaborator accepts. *)
  let src =
    base_class
      "  relationships\n\
      \    down : node multi socket inverse up;\n\
      \    up : node multi plug inverse down;\n\
      \  attributes\n\
      \    a : int;\n\
      \  rules\n\
      \    rx = sum(down.ry default 0);\n\
      \    ry = sum(up.rx default 0);"
  in
  (match Cactis_ddl.Elaborate.load_string src with
  | _ -> Alcotest.fail "expected the analysis gate to reject"
  | exception Cactis_ddl.Elaborate.Error msg ->
    Alcotest.(check bool) "message mentions the cycle" true
      (let sub = "cycle" in
       let n = String.length msg and m = String.length sub in
       let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
       go 0));
  (* The escape hatch still elaborates (the dynamic detector remains). *)
  ignore (Cactis_ddl.Elaborate.load_string ~analyze:false src)

let test_warning_schemas_still_elaborate () =
  (* Warnings (potential cycles) never block elaboration: milestones.cactis
     carries one and must keep loading. *)
  let src =
    base_class
      "  relationships\n\
      \    down : node multi socket inverse up;\n\
      \    up : node multi plug inverse down;\n\
      \  attributes\n\
      \    a : int;\n\
      \  rules\n\
      \    rx = a + sum(down.rx default 0);"
  in
  ignore (Cactis_ddl.Elaborate.load_string src)

(* ---- counters ---- *)

let test_counters_instrumented () =
  let counters = Cactis_util.Counters.create () in
  let sch = Db.schema (Cactis_apps.Milestone.db (Cactis_apps.Milestone.create ())) in
  ignore (Analyze.analyze_schema ~counters sch);
  ignore (Analyze.analyze_schema ~counters sch);
  Alcotest.(check int) "runs counted" 2 (Cactis_util.Counters.get counters "analysis_runs");
  Alcotest.(check bool) "nodes counted" true
    (Cactis_util.Counters.get counters "analysis_nodes" > 0);
  Alcotest.(check bool) "edges counted" true
    (Cactis_util.Counters.get counters "analysis_edges" > 0)

(* ---- JSON shape ---- *)

let test_json_rendering () =
  let ds = Cactis_apps.Flowan.static_diagnostics () in
  let json = Analyze.to_json ds in
  (* Parseable enough to check the shape without a JSON library. *)
  Alcotest.(check bool) "is an array" true
    (String.length json >= 2 && json.[0] = '[' && json.[String.length json - 1] = ']');
  let contains sub =
    let n = String.length json and m = String.length sub in
    let rec go i = i + m <= n && (String.sub json i m = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has severity field" true (contains "\"severity\":\"warning\"");
  Alcotest.(check bool) "has witness steps" true (contains "\"step\":\"succ\"");
  Alcotest.(check bool) "has code field" true (contains "\"code\":\"potential-cycle\"")

(* ---- convergence classification ([Far86]) ---- *)

(* Boolean closure over a one-way relationship: monotone over the
   two-point lattice, so the cycle is provably convergent. *)
let reachability_src =
  base_class
    "  relationships\n\
    \    down : node multi socket inverse up;\n\
    \    up : node multi plug inverse down;\n\
    \  attributes\n\
    \    marked : bool := false;\n\
    \  rules\n\
    \    reach = marked or any(up.reach default false);"

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_convergent_cycle_info () =
  let ds = lint reachability_src in
  Alcotest.(check (option string)) "convergent cycle is info" (Some "info")
    (Option.map Diag.severity_name (severity_of "convergent-cycle" ds));
  Alcotest.(check bool) "not reported as potential-cycle" false (has_code "potential-cycle" ds);
  let d = List.hd (with_code "convergent-cycle" ds) in
  Alcotest.(check bool) "witness non-empty" true (d.Diag.witness <> []);
  Alcotest.(check bool) "shape summary names bool" true (contains ~sub:"bool" d.Diag.message);
  Alcotest.(check bool) "hint mentions fixed-point mode" true
    (match d.Diag.hint with Some h -> contains ~sub:"set_fixed_point" h | None -> false);
  (* Strict linting accepts a provably convergent schema. *)
  Alcotest.(check bool) "no warnings at all" false
    (List.exists (fun d -> d.Diag.severity = Diag.Warning) ds)

let test_divergent_culprit_named () =
  (* Arithmetic in the cycle breaks every closure: the warning survives
     and names the attribute that broke the proof. *)
  let ds =
    lint
      (base_class
         "  relationships\n\
         \    down : node multi socket inverse up;\n\
         \    up : node multi plug inverse down;\n\
         \  attributes\n\
         \    a : int;\n\
         \  rules\n\
         \    rx = a + sum(down.rx default 0);")
  in
  Alcotest.(check (option string)) "still a warning" (Some "warning")
    (Option.map Diag.severity_name (severity_of "potential-cycle" ds));
  let d = List.hd (with_code "potential-cycle" ds) in
  Alcotest.(check bool) "explains the failed proof" true
    (contains ~sub:"not provably convergent" d.Diag.message);
  Alcotest.(check bool) "names the culprit" true (contains ~sub:"node.rx" d.Diag.message)

(* ---- engine fixed-point mode over convergent cycles ---- *)

let build_ring src n =
  let sch = Cactis_ddl.Elaborate.schema (Cactis_ddl.Parser.parse_schema src) in
  let db = Db.create sch in
  let ids = Array.init n (fun _ -> Db.create_instance db "node") in
  for i = 0 to n - 1 do
    Db.link db ~from_id:ids.(i) ~rel:"down" ~to_id:ids.((i + 1) mod n)
  done;
  (db, ids)

let test_fixed_point_solves_ring () =
  let db, ids = build_ring reachability_src 4 in
  (* Without the opt-in, cyclic data still raises. *)
  (match Db.get db ~watch:false ids.(0) "reach" with
  | _ -> Alcotest.fail "expected Errors.Cycle without fixed-point mode"
  | exception Errors.Cycle _ -> ());
  Db.set_fixed_point db true;
  Alcotest.(check (option int)) "mode queryable" (Some 1000) (Db.fixed_point db);
  (* Nothing marked: the least fixed point is all-false. *)
  Array.iter
    (fun id ->
      Alcotest.(check bool) "unmarked ring is unreachable" false
        (Value.as_bool (Db.get db ~watch:false id "reach")))
    ids;
  (* Marking one node floods the whole ring through the cycle. *)
  Db.set db ids.(2) "marked" (Value.Bool true);
  Array.iter
    (fun id ->
      Alcotest.(check bool) "mark floods the ring" true
        (Value.as_bool (Db.get db ~watch:false id "reach")))
    ids;
  (* And back: clearing the mark re-converges to all-false. *)
  Db.set db ids.(2) "marked" (Value.Bool false);
  Alcotest.(check bool) "clearing re-converges" false
    (Value.as_bool (Db.get db ~watch:false ids.(0) "reach"));
  let c = Cactis_util.Counters.snapshot (Db.counters db) in
  let get k = try List.assoc k c with Not_found -> 0 in
  Alcotest.(check bool) "fixpoint_runs counted" true (get "fixpoint_runs" >= 2);
  Alcotest.(check bool) "sweeps counted" true (get "fixpoint_sweeps" >= get "fixpoint_runs")

let test_fixed_point_divergent_still_rejected () =
  (* A sum cycle has no bounded shape: fixed-point mode must refuse it
     rather than iterate forever. *)
  let src =
    base_class
      "  relationships\n\
      \    down : node multi socket inverse up;\n\
      \    up : node multi plug inverse down;\n\
      \  attributes\n\
      \    a : int;\n\
      \  rules\n\
      \    reach = a + sum(down.reach default 0);"
  in
  let db, ids = build_ring src 3 in
  Db.set_fixed_point db true;
  (match Db.get db ~watch:false ids.(0) "reach" with
  | _ -> Alcotest.fail "expected Errors.Cycle for a divergent cycle"
  | exception Errors.Cycle _ -> ());
  (* The failed attempt leaves no partial iterate behind: acyclic reads
     of the same schema still work. *)
  Db.unlink db ~from_id:ids.(2) ~rel:"down" ~to_id:ids.(0);
  Alcotest.(check bool) "acyclic chain evaluates" true
    (match Db.get db ~watch:false ids.(0) "reach" with Value.Int _ -> true | _ -> false)

(* ---- machine-applicable fixes ---- *)

module Fix = Cactis_ddl.Fix

let fixable_src =
  base_class
    "  relationships\n\
    \    down : node multi socket inverse up;\n\
    \    up : node multi plug inverse down;\n\
    \  attributes\n\
    \    a : int;\n\
    \  rules\n\
    \    scratch = a * 2;\n\
    \    total = a + sum(down.budget default 0);\n\
    \  constraints\n\
    \    sane = total >= 0 message \"negative\";"

let test_fix_field_in_json () =
  let ds = lint fixable_src in
  let dead = List.hd (with_code "dead-attr" ds) in
  Alcotest.(check (option string)) "dead-attr carries a drop-rule fix"
    (Some "drop-rule:node.scratch") dead.Diag.fix;
  let dangle = List.hd (with_code "dangling-transmission" ds) in
  Alcotest.(check (option string)) "dangling-transmission carries a declare-attr fix"
    (Some "declare-attr:node.budget:int") dangle.Diag.fix;
  let json = Analyze.to_json ds in
  Alcotest.(check bool) "fix field serialized" true
    (contains ~sub:"\"fix\":\"drop-rule:node.scratch\"" json)

let test_fix_run_to_clean () =
  let lint_ast items = Lint.typecheck_diags items @ Lint.analyze_ast items in
  let items = Cactis_ddl.Parser.parse_schema fixable_src in
  let items', applied = Fix.run ~lint:lint_ast items in
  Alcotest.(check (list string)) "both fixes applied"
    [ "declare-attr:node.budget:int"; "drop-rule:node.scratch" ]
    (List.sort compare (List.map Fix.directive_to_string applied));
  (* The patched AST round-trips through the pretty-printer and parser
     and re-lints clean of fixable findings. *)
  let reparsed = Cactis_ddl.Parser.parse_schema (Cactis_ddl.Pretty.schema_to_string items') in
  let ds = lint_ast reparsed in
  Alcotest.(check bool) "no dead attrs left" false (has_code "dead-attr" ds);
  Alcotest.(check bool) "no dangling transmissions left" false
    (has_code "dangling-transmission" ds);
  Alcotest.(check (list string)) "no errors left" []
    (List.map Diag.to_string (Diag.errors ds))

(* ---- incremental re-validation ---- *)

let test_incremental_revalidation () =
  let counters = Cactis_util.Counters.create () in
  let get k = Cactis_util.Counters.get counters k in
  Analyze.install ~counters ();
  Fun.protect
    ~finally:(fun () -> Analyze.install ())
    (fun () ->
      let sch = Schema.create () in
      Schema.add_type sch "t";
      Schema.add_attr sch ~type_name:"t" (Rule.intrinsic "a" (Value.Int 0));
      Schema.validate sch;
      Alcotest.(check int) "first validation is a full run" 1 (get "analysis_runs");
      Schema.validate sch;
      Alcotest.(check int) "untouched schema skips analysis" 1 (get "analysis_validation_skips");
      Alcotest.(check int) "no extra full run on skip" 1 (get "analysis_runs");
      (* add_attr after a clean validation: only the circularity pass
         over the touched SCCs re-runs. *)
      Schema.add_attr sch ~type_name:"t"
        (Rule.derived "r" (Rule.map1 "a" (fun v -> v)));
      Schema.validate sch;
      Alcotest.(check int) "incremental revalidation" 1 (get "analysis_incremental_runs");
      Alcotest.(check int) "full analysis not re-run" 1 (get "analysis_runs");
      (* Any other mutation class resets to the full pipeline. *)
      Schema.add_type sch "u";
      Schema.validate sch;
      Alcotest.(check int) "structural change forces a full run" 2 (get "analysis_runs"))

(* ---- QCheck: static verdict vs dynamic behaviour ---- *)

module G = Gen_schemas

(* Build a database over [src] with RANDOM links — cycles allowed — and
   query every derived attribute everywhere.  Returns true if any query
   raised Errors.Cycle. *)
let any_dynamic_cycle cfg src =
  let db =
    Db.create (Cactis_ddl.Elaborate.schema ~analyze:false (Cactis_ddl.Parser.parse_schema src))
  in
  let rng = Rng.create (cfg.G.seed + 7) in
  let ids =
    Array.init cfg.G.instances (fun i ->
        Db.create_instance db (Printf.sprintf "k%d" (i mod cfg.G.classes)))
  in
  (* Arbitrary same-class links, including back-links and self-loops. *)
  for _ = 1 to cfg.G.instances * 2 do
    let i = Rng.int rng cfg.G.instances in
    let j_candidates =
      Array.to_list ids
      |> List.filteri (fun j _ -> j mod cfg.G.classes = i mod cfg.G.classes)
    in
    let target = Rng.pick_list rng j_candidates in
    if not (List.mem target (Db.related db ids.(i) "down")) then
      Db.link db ~from_id:ids.(i) ~rel:"down" ~to_id:target
  done;
  let cycled = ref false in
  Array.iter
    (fun id ->
      for r = 0 to cfg.G.rules - 1 do
        match Db.get db ~watch:false id (Printf.sprintf "r%d" r) with
        | _ -> ()
        | exception Errors.Cycle _ -> cycled := true
      done)
    ids;
  !cycled

let prop_clean_verdict_sound =
  (* Soundness of the circularity test: schemas whose type-level graph
     the analyzer calls acyclic never raise Errors.Cycle, no matter how
     cyclic the data graph is. *)
  QCheck.Test.make ~name:"clean static verdict => no dynamic Errors.Cycle" ~count:80
    (QCheck.make ~print:G.print_cfg G.gen)
    (fun cfg ->
      let src = G.schema_source ~cross:false cfg in
      let ds = lint src in
      if has_code "cycle" ds || has_code "potential-cycle" ds then
        QCheck.Test.fail_reportf "cross-free schema flagged circular:\n%s" src;
      not (any_dynamic_cycle cfg src))

let prop_witness_names_real_attrs =
  (* Completeness of witnesses: whenever a generated schema is flagged,
     every node of the witness is a declared attribute of its class. *)
  QCheck.Test.make ~name:"witness paths name declared attributes" ~count:80
    (QCheck.make ~print:G.print_cfg G.gen)
    (fun cfg ->
      let src = G.schema_source ~cross:true cfg in
      let items = Cactis_ddl.Parser.parse_schema src in
      let v = Lint.view_of_ast items in
      Lint.analyze_ast items
      |> List.for_all (fun d ->
             List.for_all
               (fun ((n : Diag.node), _) ->
                 match Cactis_analysis.View.find_type v n.Diag.n_type with
                 | None -> false
                 | Some t -> Cactis_analysis.View.find_attr t n.Diag.n_attr <> None)
               d.Diag.witness))

let prop_cost_bounds_dominate =
  (* Soundness of the cost pass: every rule evaluation costs at least one
     abstract op unit, and demand evaluation touches each slot of the
     demanded attribute's cone at most once — so the measured rule_evals
     delta of any single query is bounded by the static cumulative upper
     bound of the demanded attribute. *)
  QCheck.Test.make ~name:"static cost upper bounds dominate measured rule evals" ~count:60
    (QCheck.make ~print:G.print_cfg G.gen)
    (fun cfg ->
      let src = G.schema_source ~cross:false cfg in
      let sch =
        Cactis_ddl.Elaborate.schema ~analyze:false (Cactis_ddl.Parser.parse_schema src)
      in
      let cost = Cactis_analysis.Cost.analyze_schema sch in
      let hi_of tn attr =
        match
          List.find_opt
            (fun (c : Cactis_analysis.Cost.attr_cost) ->
              c.Cactis_analysis.Cost.ac_type = tn && c.Cactis_analysis.Cost.ac_attr = attr)
            cost.Cactis_analysis.Cost.per_attr
        with
        | Some c -> c.Cactis_analysis.Cost.ac_cumulative.Cactis_analysis.Cost.hi
        | None -> None
      in
      let db = Db.create sch in
      let counters = Db.counters db in
      let ids =
        Array.init cfg.G.instances (fun i ->
            Db.create_instance db (Printf.sprintf "k%d" (i mod cfg.G.classes)))
      in
      let ok = ref true in
      Array.iter
        (fun id ->
          for r = 0 to cfg.G.rules - 1 do
            let tn = Db.type_of db id in
            let attr = Printf.sprintf "r%d" r in
            let before = Cactis_util.Counters.get counters "rule_evals" in
            ignore (Db.get db ~watch:false id attr);
            let delta = Cactis_util.Counters.get counters "rule_evals" - before in
            match hi_of tn attr with
            | Some hi -> if float_of_int delta > hi then ok := false
            | None ->
              (* cross=false schemas never cross a relationship, so every
                 cumulative bound must be finite. *)
              ok := false
          done)
        ids;
      !ok)

(* Random boolean-closure schemas: every rule is and/or/any/all over
   bool atoms, so every cyclic SCC must classify convergent, and the
   engine — capped at exactly the static iteration bound — must reach a
   fixed point on arbitrary cyclic instance graphs. *)
let bool_schema_source cfg =
  let rng = Rng.create (cfg.G.seed + 13) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "object class node is\n";
  Buffer.add_string buf
    "  relationships\n    down : node multi socket inverse up;\n    up : node multi plug inverse down;\n";
  Buffer.add_string buf "  attributes\n";
  for a = 0 to cfg.G.intrinsics - 1 do
    Buffer.add_string buf
      (Printf.sprintf "    m%d : bool := %b;\n" a (Rng.chance rng 0.3))
  done;
  Buffer.add_string buf "  rules\n";
  for r = 0 to cfg.G.rules - 1 do
    let atom () =
      match Rng.int rng 4 with
      | 0 -> Printf.sprintf "m%d" (Rng.int rng cfg.G.intrinsics)
      | 1 when r > 0 -> Printf.sprintf "b%d" (Rng.int rng r)
      | 1 -> "false"
      | 2 -> Printf.sprintf "any(down.b%d default false)" (Rng.int rng cfg.G.rules)
      | _ -> Printf.sprintf "all(up.b%d default true)" (Rng.int rng cfg.G.rules)
    in
    let op = if Rng.bool rng then "or" else "and" in
    Buffer.add_string buf (Printf.sprintf "    b%d = %s %s %s;\n" r (atom ()) op (atom ()))
  done;
  Buffer.add_string buf "end object;\n";
  Buffer.contents buf

let prop_convergent_bound_terminates =
  QCheck.Test.make ~name:"convergent verdict => fixed point within the static bound" ~count:60
    (QCheck.make ~print:G.print_cfg G.gen)
    (fun cfg ->
      let src = bool_schema_source cfg in
      let items = Cactis_ddl.Parser.parse_schema src in
      let v = Lint.view_of_ast items in
      let g = Cactis_analysis.Depgraph.build v in
      let sccs = Cactis_analysis.Depgraph.cyclic_sccs g in
      let verdicts = List.map (Cactis_analysis.Fixpoint.classify v g) sccs in
      if
        not
          (List.for_all
             (function Cactis_analysis.Fixpoint.Convergent _ -> true | _ -> false)
             verdicts)
      then QCheck.Test.fail_reportf "bool-closure schema classified divergent:\n%s" src;
      (* Sum of per-SCC bounds: one demand may entangle several SCCs. *)
      let bound =
        List.fold_left
          (fun acc verdict ->
            match
              Cactis_analysis.Fixpoint.iteration_bound ~instances:cfg.G.instances verdict
            with
            | Some b -> acc + b
            | None -> acc)
          0 verdicts
      in
      let sch = Cactis_ddl.Elaborate.schema ~analyze:false items in
      let db = Db.create sch in
      if sccs <> [] then Db.set_fixed_point ~max_iters:bound db true;
      let rng = Rng.create (cfg.G.seed + 29) in
      let ids = Array.init cfg.G.instances (fun _ -> Db.create_instance db "node") in
      for _ = 1 to cfg.G.instances * 2 do
        let i = Rng.int rng cfg.G.instances and j = Rng.int rng cfg.G.instances in
        if not (List.mem ids.(j) (Db.related db ids.(i) "down")) then
          Db.link db ~from_id:ids.(i) ~rel:"down" ~to_id:ids.(j)
      done;
      let ok = ref true in
      Array.iter
        (fun id ->
          for r = 0 to cfg.G.rules - 1 do
            match Db.get db ~watch:false id (Printf.sprintf "b%d" r) with
            | Value.Bool _ -> ()
            | _ -> ok := false
            | exception Errors.Cycle _ -> ok := false
          done)
        ids;
      !ok)

let () =
  Alcotest.run "cactis-analysis"
    [
      ( "circularity",
        [
          Alcotest.test_case "self cycle is an error with witness" `Quick test_self_cycle_error;
          Alcotest.test_case "rel+inverse cycle is an error" `Quick test_link_cycle_error;
          Alcotest.test_case "one-way rel cycle is a warning" `Quick test_potential_cycle_warning;
          Alcotest.test_case "acyclic schema is clean" `Quick test_acyclic_clean;
        ] );
      ( "dead attrs",
        [
          Alcotest.test_case "unread rule flagged info" `Quick test_dead_attr_info;
          Alcotest.test_case "read/constrained/exported not dead" `Quick test_dead_attr_negatives;
          Alcotest.test_case "predicate reads keep attrs alive" `Quick
            test_dead_attr_subtype_predicate_reads;
        ] );
      ( "dangling",
        [
          Alcotest.test_case "unknown attr and rel in rules" `Quick test_dangling_attr_and_rel;
          Alcotest.test_case "missing transmitted attr is warning" `Quick
            test_dangling_transmission_warning;
          Alcotest.test_case "unknown target and inverse" `Quick test_dangling_rel_wiring;
          Alcotest.test_case "bad export and orphan subtype" `Quick test_dangling_export_and_parent;
          Alcotest.test_case "predicate over missing attr" `Quick test_subtype_predicate_dangling;
          Alcotest.test_case "fully resolved schema is clean" `Quick test_dangling_negative;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "constant constraint flagged" `Quick test_constraint_constant;
          Alcotest.test_case "topology-only constraint is info" `Quick
            test_constraint_topology_only;
          Alcotest.test_case "intrinsic-grounded constraint clean" `Quick test_constraint_negative;
        ] );
      ( "ast lint",
        [ Alcotest.test_case "duplicate class and attr" `Quick test_duplicates ] );
      ( "shipped schemas",
        [
          Alcotest.test_case "all app schemas error-free" `Quick test_shipped_schemas_error_free;
          Alcotest.test_case "flowan flagged with real witness" `Quick
            test_flowan_flagged_with_witness;
        ] );
      ( "convergence",
        [
          Alcotest.test_case "bool closure cycle is info" `Quick test_convergent_cycle_info;
          Alcotest.test_case "divergent warning names culprit" `Quick
            test_divergent_culprit_named;
          Alcotest.test_case "fixed point solves a data ring" `Quick test_fixed_point_solves_ring;
          Alcotest.test_case "divergent cycle still rejected" `Quick
            test_fixed_point_divergent_still_rejected;
        ] );
      ( "fixes",
        [
          Alcotest.test_case "fix directives in diagnostics and JSON" `Quick
            test_fix_field_in_json;
          Alcotest.test_case "Fix.run reaches a clean schema" `Quick test_fix_run_to_clean;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "Schema.validate uses the analyzer" `Quick test_validate_hook;
          Alcotest.test_case "strict mode rejects bad DDL" `Quick test_strict_mode;
          Alcotest.test_case "Elaborate gates on errors" `Quick test_elaborate_gate;
          Alcotest.test_case "warnings still elaborate" `Quick test_warning_schemas_still_elaborate;
          Alcotest.test_case "incremental revalidation" `Quick test_incremental_revalidation;
        ] );
      ( "observability",
        [
          Alcotest.test_case "analysis counters bump" `Quick test_counters_instrumented;
          Alcotest.test_case "json rendering shape" `Quick test_json_rendering;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_clean_verdict_sound;
          QCheck_alcotest.to_alcotest prop_witness_names_real_attrs;
          QCheck_alcotest.to_alcotest prop_cost_bounds_dominate;
          QCheck_alcotest.to_alcotest prop_convergent_bound_terminates;
        ] );
    ]
