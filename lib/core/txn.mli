(** Transaction deltas: the logged primitive operations and their
    inverses.

    The paper's key observation (§2.2, §3): "all of the actions that take
    place as a consequence of changing an attribute value can be undone
    simply by restoring the old value of the attribute … we need only
    remember the small changes made in order to restore the database to
    its old status."  A delta therefore records {e only the primitive
    changes} (intrinsic writes, links made/broken, instances
    created/deleted); derived consequences are re-derived by the engine
    after the inverse operations are replayed. *)

(** A schema mutation, carried inside a transaction delta with enough
    detail to replay {e and} invert it.  Derived rules and subtype
    predicates are closures at run time; the optional [repr]/[*_repr]
    fields hold their DDL expression source so the change can be
    serialized to the WAL and recompiled on recovery
    (see {!Schema.compile_rule_repr}).  [attr_reprs] is positionally
    aligned with [def.extra_attrs]. *)
type schema_change =
  | Schema_add_type of { type_name : string }
  | Schema_add_rel of { type_name : string; rel : Schema.rel_def }
  | Schema_add_export of { type_name : string; rel : string; export : string; attr : string }
  | Schema_add_attr of { type_name : string; def : Schema.attr_def; repr : string option }
  | Schema_add_subtype of {
      def : Schema.subtype_def;
      predicate_repr : string option;
      attr_reprs : string option list;
    }

type op =
  | Set_intrinsic of { id : int; attr : string; old_value : Value.t; new_value : Value.t }
  | Link of { from_id : int; rel : string; to_id : int }
  | Unlink of { from_id : int; rel : string; to_id : int }
  | Create of { id : int; type_name : string }
  | Delete of { id : int; type_name : string; intrinsics : (string * Value.t) list }
      (** all links are guaranteed broken (and logged) before deletion *)
  | Schema of { change : schema_change; retract : bool }
      (** slot-layout extension is append-only, so the inverse of a
          declaration is a retraction of that declaration (the newest
          one of its kind), not a repack *)

(** A committed transaction's log, oldest op first. *)
type delta = {
  ops : op list;
  label : string option;
}

(** [inverse_op op] is the primitive that undoes [op]. *)
val inverse_op : op -> op

(** [inverse d] is the delta that undoes [d] (ops reversed and
    inverted). *)
val inverse : delta -> delta

(** Number of primitive ops — the paper's "size of the delta". *)
val size : delta -> int

(** [is_schema_op op] — true for {!Schema} ops (used to count schema
    versions along a history path). *)
val is_schema_op : op -> bool

val pp_schema_change : Format.formatter -> schema_change -> unit
val pp_op : Format.formatter -> op -> unit
val pp : Format.formatter -> delta -> unit
