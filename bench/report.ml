(* Reporting helpers shared by the experiment harness. *)

module Counters = Cactis_util.Counters
module Table = Cactis_util.Ascii_table

(* ------------------------------------------------------------------ *)
(* Optional JSON capture (--json): every section/table printed is also
   recorded, then dumped as machine-readable JSON at exit.             *)

type jtable = {
  headers : string list;
  rows : string list list;
}

type jsection = {
  sid : string;
  title : string;
  mutable tables : jtable list;  (* newest first *)
}

let capturing = ref false
let captured : jsection list ref = ref []  (* newest first *)

let enable_capture () = capturing := true

let section id title claim =
  Printf.printf "\n%s\n%s %s\n%s\n" (String.make 78 '=') id title (String.make 78 '-');
  Printf.printf "paper claim: %s\n" claim;
  if !capturing then captured := { sid = id; title; tables = [] } :: !captured

let table ~headers rows =
  print_string (Table.render ~headers rows);
  if !capturing then
    match !captured with
    | s :: _ -> s.tables <- { headers; rows } :: s.tables
    | [] -> ()

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Cells holding plain numbers are emitted as JSON numbers so counters
   can be consumed without re-parsing. *)
let json_cell s =
  match int_of_string_opt s with
  | Some n -> string_of_int n
  | None -> (
    match float_of_string_opt s with
    | Some f when Float.is_finite f -> Printf.sprintf "%g" f
    | Some _ | None -> Printf.sprintf "\"%s\"" (json_escape s))

let json_string s = Printf.sprintf "\"%s\"" (json_escape s)

let write_json path =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n  \"experiments\": [\n";
  let sections = List.rev !captured in
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string buf ",\n";
      Buffer.add_string buf
        (Printf.sprintf "    {\"id\": %s, \"title\": %s, \"tables\": [" (json_string s.sid)
           (json_string s.title));
      List.iteri
        (fun j (t : jtable) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf "{\"headers\": [";
          Buffer.add_string buf (String.concat ", " (List.map json_string t.headers));
          Buffer.add_string buf "], \"rows\": [";
          List.iteri
            (fun k row ->
              if k > 0 then Buffer.add_string buf ", ";
              Buffer.add_string buf "[";
              Buffer.add_string buf (String.concat ", " (List.map json_cell row));
              Buffer.add_string buf "]")
            t.rows;
          Buffer.add_string buf "]}")
        (List.rev s.tables);
      Buffer.add_string buf "]}")
    sections;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* [measure db f] runs [f] and returns the per-counter increase. *)
let measure db f =
  let c = Cactis.Db.counters db in
  let before = Counters.snapshot c in
  f ();
  Counters.diff ~before ~after:(Counters.snapshot c)

let count diff name = match List.assoc_opt name diff with Some v -> v | None -> 0

(* Disk reads of a database's pager. *)
let disk_reads db =
  Cactis_storage.Disk.reads (Cactis_storage.Pager.disk (Cactis.Store.pager (Cactis.Db.store db)))

(* Counter and latency-histogram snapshots of one database, printed as
   tables so they ride into the --json capture with everything else. *)
let obs_tables db =
  let hists = Cactis_obs.Histogram.snapshot (Cactis.Db.obs db).Cactis_obs.Ctx.hists in
  let us f = Printf.sprintf "%.1f" (f *. 1e6) in
  table
    ~headers:[ "histogram"; "count"; "p50 (us)"; "p95 (us)"; "p99 (us)"; "max (us)" ]
    (List.map
       (fun (st : Cactis_obs.Histogram.stats) ->
         [
           st.Cactis_obs.Histogram.st_name;
           string_of_int st.st_count;
           us st.st_p50;
           us st.st_p95;
           us st.st_p99;
           us st.st_max;
         ])
       hists);
  table ~headers:[ "counter"; "value" ]
    (List.map (fun (n, v) -> [ n; string_of_int v ]) (Counters.snapshot (Cactis.Db.counters db)))

(* ------------------------------------------------------------------ *)
(* Bechamel timing                                                     *)

let run_timing ~quota tests =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let rows =
    List.concat_map
      (fun test ->
        let raw = Benchmark.all cfg [ instance ] test in
        let analyzed = Analyze.all ols instance raw in
        Hashtbl.fold
          (fun name result acc ->
            let estimate =
              match Analyze.OLS.estimates result with
              | Some [ e ] -> Printf.sprintf "%.0f" e
              | Some _ | None -> "-"
            in
            (name, estimate) :: acc)
          analyzed [])
      tests
    |> List.sort compare
  in
  table ~headers:[ "benchmark"; "ns/run" ] (List.map (fun (n, e) -> [ n; e ]) rows)
