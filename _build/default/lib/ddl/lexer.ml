exception Error of { line : int; col : int; message : string }

type located = {
  token : Token.t;
  line : int;
  col : int;
}

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let error st fmt =
  Format.kasprintf (fun message -> raise (Error { line = st.line; col = st.col; message })) fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st = if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = '$'
let is_ident_char c = is_ident_start c || is_digit c

let rec skip_trivia st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_trivia st
  | Some '-' when peek2 st = Some '-' ->
    skip_line_comment st;
    skip_trivia st
  | Some '/' when peek2 st = Some '/' ->
    skip_line_comment st;
    skip_trivia st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    skip_block_comment st;
    skip_trivia st
  | Some _ | None -> ()

and skip_line_comment st =
  match peek st with
  | Some '\n' | None -> ()
  | Some _ ->
    advance st;
    skip_line_comment st

and skip_block_comment st =
  match peek st with
  | None -> error st "unterminated comment"
  | Some '*' when peek2 st = Some '/' ->
    advance st;
    advance st
  | Some _ ->
    advance st;
    skip_block_comment st

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  let word = String.sub st.src start (st.pos - start) in
  match List.assoc_opt (String.lowercase_ascii word) Token.keywords with
  | Some kw -> kw
  | None -> Token.IDENT word

let lex_number st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  let is_float =
    match (peek st, peek2 st) with
    | Some '.', Some c when is_digit c -> true
    | _ -> false
  in
  if is_float then begin
    advance st;
    while (match peek st with Some c -> is_digit c | None -> false) do
      advance st
    done;
    (match peek st with
    | Some ('e' | 'E') ->
      advance st;
      (match peek st with Some ('+' | '-') -> advance st | _ -> ());
      while (match peek st with Some c -> is_digit c | None -> false) do
        advance st
      done
    | _ -> ());
    Token.FLOAT (float_of_string (String.sub st.src start (st.pos - start)))
  end
  else Token.INT (int_of_string (String.sub st.src start (st.pos - start)))

let lex_string st =
  advance st;
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> error st "unterminated string literal"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        loop ()
      | Some 't' ->
        Buffer.add_char buf '\t';
        advance st;
        loop ()
      | Some (('"' | '\\') as c) ->
        Buffer.add_char buf c;
        advance st;
        loop ()
      | Some c -> error st "unknown escape \\%c" c
      | None -> error st "unterminated string literal")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      loop ()
  in
  loop ();
  Token.STRING (Buffer.contents buf)

let next_token st =
  skip_trivia st;
  let line = st.line and col = st.col in
  let mk token = { token; line; col } in
  match peek st with
  | None -> mk Token.EOF
  | Some c when is_ident_start c -> mk (lex_ident st)
  | Some c when is_digit c -> mk (lex_number st)
  | Some '"' -> mk (lex_string st)
  | Some c -> (
    let two tok =
      advance st;
      advance st;
      mk tok
    in
    let one tok =
      advance st;
      mk tok
    in
    match (c, peek2 st) with
    | ':', Some '=' -> two Token.ASSIGN
    | '<', Some '>' -> two Token.NEQ
    | '<', Some '=' -> two Token.LE
    | '>', Some '=' -> two Token.GE
    | '(', _ -> one Token.LPAREN
    | ')', _ -> one Token.RPAREN
    | ',', _ -> one Token.COMMA
    | ';', _ -> one Token.SEMI
    | ':', _ -> one Token.COLON
    | '.', _ -> one Token.DOT
    | '=', _ -> one Token.EQ
    | '<', _ -> one Token.LT
    | '>', _ -> one Token.GT
    | '+', _ -> one Token.PLUS
    | '-', _ -> one Token.MINUS
    | '*', _ -> one Token.STAR
    | '/', _ -> one Token.SLASH
    | _ -> error st "unexpected character %C" c)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec loop acc =
    let tok = next_token st in
    if tok.token = Token.EOF then List.rev (tok :: acc) else loop (tok :: acc)
  in
  loop []
