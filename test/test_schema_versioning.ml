(* Schema versioning: schema changes are first-class, WAL-logged,
   undoable transaction deltas.

   - QCheck property: a random interleaving of data commits, schema
     changes (intrinsic/derived add_attr, add_subtype), undo/redo and
     checkpoint/close/recover round-trips ends observably identical to
     the same interleaving run in memory with no persistence at all.
   - Regression: checkout to a version predating an add_attr must not
     expose the attribute; moving forward again (checkout/redo)
     restores it — checked through Explain and strict-mode validation.
   - Typed-error rejections: Persist.attach and Persist.recover refuse
     a WAL whose schema version disagrees with the checkpoint's.
   - Format compatibility: a committed CWAL2-era fixture log recovers
     under the CWAL3 reader with exactly the recorded counters/values
     (test/fixtures/cwal2). *)

module Value = Cactis.Value
module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Errors = Cactis.Errors
module Snapshot = Cactis.Snapshot
module Persist = Cactis.Persist
module Explain = Cactis.Explain
module Wal = Cactis_storage.Wal
module Rng = Cactis_util.Rng
module G = Gen_schemas

let parse_rule src = Cactis_ddl.Elaborate.compile_rule (Cactis_ddl.Parser.parse_expr src)
let () = Cactis_ddl.Elaborate.install_rule_compiler ()

(* Scratch dirs live in dune's per-test sandbox. *)
let tmp_seq = ref 0

let temp_dir () =
  incr tmp_seq;
  let dir = Printf.sprintf "schema_ver_scratch_%d" !tmp_seq in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path data =
  let oc = open_out_bin path in
  output_string oc data;
  close_out oc

(* ------------------------------------------------------------------ *)
(* Property: persisted interleavings match the in-memory run            *)

type action =
  | Create of int  (* class index *)
  | SetA of int * int * int  (* instance index, intrinsic index, value *)
  | LinkDown of int * int  (* older instance index -> newer, same class *)
  | AddIntr of int * int  (* class, name counter *)
  | AddRule of int * int * int  (* class, name counter, constant *)
  | AddSub of int * int * int  (* class, name counter, threshold *)
  | Undo
  | Redo
  | Roundtrip of bool  (* checkpoint before close+recover? *)

let cname c = Printf.sprintf "k%d" c

(* Deterministic action sequence from a seed.  Book-keeping here only
   approximates the run (undo makes the simulated counts drift), but it
   is the SAME approximation for both runs — execution guards the rest
   symmetrically.  Undo/redo stop once a Roundtrip has happened: a
   recovered database linearizes undo into forward deltas, so its undo
   depth legitimately differs from the uninterrupted run's. *)
let gen_actions rng (cfg : G.cfg) n =
  let sim_classes = ref [] in
  let sim_count = ref 0 in
  let sim_pos = ref 0 in
  let sim_redo = ref 0 in
  let roundtripped = ref false in
  let ctr = ref 0 in
  let commit () =
    incr sim_pos;
    sim_redo := 0
  in
  let acts = ref [] in
  for _ = 1 to n do
    let pick = Rng.int rng 100 in
    let act =
      if pick < 28 || !sim_count = 0 then begin
        let c = Rng.int rng cfg.G.classes in
        sim_classes := c :: !sim_classes;
        incr sim_count;
        commit ();
        Create c
      end
      else if pick < 52 then begin
        commit ();
        SetA (Rng.int rng !sim_count, Rng.int rng cfg.G.intrinsics, Rng.int rng 50)
      end
      else if pick < 62 then begin
        (* down points old -> new within one class: data graph stays
           acyclic, so the generated cross-instance rules terminate. *)
        let arr = Array.of_list (List.rev !sim_classes) in
        let pairs = ref [] in
        Array.iteri
          (fun i ci ->
            Array.iteri (fun j cj -> if j > i && ci = cj then pairs := (i, j) :: !pairs) arr)
          arr;
        commit ();
        match !pairs with
        | [] -> SetA (Rng.int rng !sim_count, 0, Rng.int rng 50)
        | l ->
          let i, j = Rng.pick_list rng l in
          LinkDown (i, j)
      end
      else if pick < 70 then begin
        incr ctr;
        commit ();
        AddIntr (Rng.int rng cfg.G.classes, !ctr)
      end
      else if pick < 78 then begin
        incr ctr;
        commit ();
        AddRule (Rng.int rng cfg.G.classes, !ctr, Rng.int rng 10)
      end
      else if pick < 84 then begin
        incr ctr;
        commit ();
        AddSub (Rng.int rng cfg.G.classes, !ctr, Rng.int rng 20)
      end
      else if pick < 91 && (not !roundtripped) && !sim_pos > 0 then begin
        decr sim_pos;
        incr sim_redo;
        Undo
      end
      else if pick < 95 && (not !roundtripped) && !sim_redo > 0 then begin
        incr sim_pos;
        decr sim_redo;
        Redo
      end
      else begin
        roundtripped := true;
        Roundtrip (Rng.bool rng)
      end
    in
    acts := act :: !acts
  done;
  List.rev !acts

(* Execute one action against [db].  Returns an error string when the
   action was rejected — rejections must line up exactly across the two
   runs, so they are collected, not swallowed. *)
let exec_action db ids action =
  let attempt f = try f () with Errors.Unknown m | Errors.Type_error m -> Some m in
  match action with
  | Create c ->
    ids := !ids @ [ Db.create_instance db (cname c) ];
    None
  | SetA (k, a, v) ->
    let id = List.nth !ids k in
    attempt (fun () ->
        Db.set db id (Printf.sprintf "a%d" a) (Value.Int v);
        None)
  | LinkDown (i, j) ->
    let from_id = List.nth !ids i and to_id = List.nth !ids j in
    attempt (fun () ->
        if not (List.mem to_id (Db.related db from_id "down")) then
          Db.link db ~from_id ~rel:"down" ~to_id;
        None)
  | AddIntr (c, n) ->
    attempt (fun () ->
        Db.add_attr db ~type_name:(cname c) (Rule.intrinsic (Printf.sprintf "x%d" n) (Value.Int n));
        None)
  | AddRule (c, n, k) ->
    let src = Printf.sprintf "a0 * 2 + %d" k in
    attempt (fun () ->
        Db.add_attr db ~expr:src ~type_name:(cname c)
          (Rule.derived (Printf.sprintf "d%d" n) (parse_rule src));
        None)
  | AddSub (c, n, th) ->
    let src = Printf.sprintf "a0 >= %d" th in
    attempt (fun () ->
        Db.add_subtype db ~predicate_expr:src ~attr_exprs:[ None ]
          {
            Schema.sub_name = Printf.sprintf "s%d" n;
            parent = cname c;
            predicate = parse_rule src;
            extra_attrs = [ Rule.intrinsic (Printf.sprintf "h%d" n) (Value.Int 1) ];
          };
        None)
  | Undo -> attempt (fun () -> Db.undo_last db; None)
  | Redo -> attempt (fun () -> Db.redo db; None)
  | Roundtrip _ -> None

(* Observable state: every attribute of every live instance, plus
   subtype memberships and the schema description.  Schema *versions*
   are deliberately excluded — a replayed history linearizes undo into
   extra deltas, so its op count legitimately differs. *)
let observe db =
  let b = Buffer.create 512 in
  let sch = Db.schema db in
  List.iter
    (fun id ->
      let tn = Db.type_of db id in
      Buffer.add_string b (Printf.sprintf "%d:%s" id tn);
      List.iter
        (fun (d : Schema.attr_def) ->
          Buffer.add_string b
            (Printf.sprintf " %s=%s" d.Schema.attr_name
               (Value.to_string (Db.get db ~watch:false id d.Schema.attr_name))))
        (Schema.attrs sch ~type_name:tn);
      List.iter
        (fun id' -> Buffer.add_string b (Printf.sprintf " ->%d" id'))
        (List.sort compare (Db.related db id "down"));
      Buffer.add_char b '\n')
    (List.sort compare (Db.instance_ids db));
  List.iter
    (fun s ->
      Buffer.add_string b
        (Printf.sprintf "%s members: %s\n" s
           (String.concat ","
              (List.map string_of_int (List.sort compare (Db.subtype_members db s))))))
    (List.sort compare (Schema.subtype_names sch));
  Buffer.add_string b (Schema.describe sch);
  Buffer.contents b

let run_interleaving cfg aseed =
  let src = G.schema_source ~cross:true cfg in
  let actions = gen_actions (Rng.create aseed) cfg 30 in
  (* Reference: in-memory, no persistence. *)
  let ref_db = Db.create (Cactis_ddl.Elaborate.load_string src) in
  let ref_ids = ref [] in
  let ref_errs =
    List.filter_map (fun a -> exec_action ref_db ref_ids a) actions
  in
  (* Persisted: same actions; Roundtrip points close the store and
     recover it from disk (optionally checkpointing first). *)
  let dir = temp_dir () in
  let db = ref (Db.create (Cactis_ddl.Elaborate.load_string src)) in
  let p = ref (Persist.attach ~sync_every:0 ~dir !db) in
  let ids = ref [] in
  let errs = ref [] in
  List.iter
    (fun a ->
      match a with
      | Roundtrip cp ->
        if cp then Persist.checkpoint !p;
        Persist.close !p;
        p := Persist.recover ~sync_every:0 ~dir (Cactis_ddl.Elaborate.load_string src);
        db := Persist.db !p
      | a -> (
        match exec_action !db ids a with
        | Some e -> errs := e :: !errs
        | None -> ()))
    actions;
  (* One final full round-trip so the end state itself is proven
     recoverable, whatever the interleaving did. *)
  Persist.checkpoint !p;
  Persist.close !p;
  let p_final = Persist.recover ~sync_every:0 ~dir (Cactis_ddl.Elaborate.load_string src) in
  let final_db = Persist.db p_final in
  let ok_state = String.equal (observe ref_db) (observe final_db) in
  let ok_errs = List.rev !errs = ref_errs in
  let ok_integrity =
    Cactis.Integrity.check ref_db = [] && Cactis.Integrity.check final_db = []
  in
  Persist.close p_final;
  rm_rf dir;
  if not ok_state then
    QCheck.Test.fail_reportf "state diverged for schema:\n%s\nref:\n%s\npersisted:\n%s" src
      (observe ref_db) (observe final_db);
  if not ok_errs then QCheck.Test.fail_reportf "rejected-action mismatch for schema:\n%s" src;
  if not ok_integrity then QCheck.Test.fail_reportf "integrity violation for schema:\n%s" src;
  true

let prop_interleaving =
  QCheck.Test.make
    ~name:"commit/schema-change/undo/redo/recover interleavings match the in-memory run"
    ~count:220
    QCheck.(make ~print:(fun (c, s) -> G.print_cfg c ^ Printf.sprintf " aseed=%d" s)
              Gen.(pair G.gen (int_range 0 1_000_000)))
    (fun (cfg, aseed) -> run_interleaving cfg aseed)

(* ------------------------------------------------------------------ *)
(* Regression: checkout across an add_attr boundary                     *)

let base_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "k";
  Schema.add_attr sch ~type_name:"k" (Rule.intrinsic "a" (Value.Int 1));
  sch

let test_checkout_predates_add_attr () =
  let sch = base_schema () in
  Schema.set_strict sch true;
  let db = Db.create sch in
  let i = Db.with_txn db (fun () ->
      let i = Db.create_instance db "k" in
      Db.set db i "a" (Value.Int 2);
      i)
  in
  Db.tag db "before";
  Db.add_attr db ~expr:"a + 1" ~type_name:"k" (Rule.derived "b" (parse_rule "a + 1"));
  Db.tag db "after";
  Alcotest.(check bool) "b evaluates after add_attr" true
    (Value.equal (Db.get db i "b") (Value.Int 3));
  (* Back before the attribute existed: it must be gone — from the
     schema, from evaluation, and from Explain. *)
  Db.checkout db "before";
  Alcotest.(check bool) "b absent from schema at old version" true
    (Schema.attr_opt sch ~type_name:"k" "b" = None);
  (match Db.get db i "b" with
  | _ -> Alcotest.fail "reading b at a version predating add_attr must fail"
  | exception Errors.Unknown _ -> ());
  (match Explain.render db i "b" with
  | _ -> Alcotest.fail "explaining b at a version predating add_attr must fail"
  | exception Errors.Unknown _ -> ());
  Alcotest.(check bool) "a still explains" true
    (String.length (Explain.render db i "a") > 0);
  (* Strict-mode validation accepts the rolled-back schema. *)
  Schema.validate sch;
  (* Forward again: the attribute and its value come back. *)
  Db.checkout db "after";
  Alcotest.(check bool) "checkout forward restores b" true
    (Value.equal (Db.get db i "b") (Value.Int 3));
  Schema.validate sch;
  (* The same boundary via undo/redo. *)
  Db.undo_last db;
  Alcotest.(check bool) "undo retracts b" true
    (Schema.attr_opt sch ~type_name:"k" "b" = None);
  Schema.validate sch;
  Db.redo db;
  Alcotest.(check bool) "redo restores b" true
    (Value.equal (Db.get db i "b") (Value.Int 3));
  Alcotest.(check bool) "redo restores b in Explain" true
    (String.length (Explain.render db i "b") > 0);
  Schema.validate sch

(* ------------------------------------------------------------------ *)
(* Typed rejections on schema-version mismatches                        *)

(* A directory whose checkpoint says schema version 0 but whose log
   header claims 7: the checkpoint file was replaced with one that
   misses schema deltas the log assumes. *)
let make_sv_mismatch_dir () =
  let dir = temp_dir () in
  let db = Db.create (base_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  Db.with_txn db (fun () -> ignore (Db.create_instance db "k"));
  Persist.checkpoint p;
  let gen = Persist.generation p in
  Persist.close p;
  let wal_path = Filename.concat dir "wal.log" in
  Sys.remove wal_path;
  let w = Wal.open_writer ~generation:gen ~schema_version:7 wal_path in
  Wal.close w;
  dir

let test_attach_rejects_sv_ahead () =
  let dir = make_sv_mismatch_dir () in
  let db2 = Db.create (base_schema ()) in
  (match Persist.attach ~dir db2 with
  | _ -> Alcotest.fail "attach must refuse a log schema version ahead of the checkpoint"
  | exception Errors.Type_error m ->
    let contains hay needle =
      let n = String.length needle in
      let rec go i = i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool) "message names the schema version" true
      (contains m "schema version"));
  rm_rf dir

let test_recover_rejects_sv_mismatch () =
  let dir = make_sv_mismatch_dir () in
  (match Persist.recover ~dir (base_schema ()) with
  | _ -> Alcotest.fail "recover must refuse a log whose schema version mismatches the checkpoint"
  | exception Errors.Type_error _ -> ());
  rm_rf dir

let test_schema_delta_roundtrip_recovers () =
  (* The happy path: schema deltas before and after a checkpoint both
     survive recovery, and the recovered schema version matches. *)
  let dir = temp_dir () in
  let db = Db.create (base_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  let i = Db.with_txn db (fun () -> Db.create_instance db "k") in
  Db.add_attr db ~expr:"a * 10" ~type_name:"k" (Rule.derived "b" (parse_rule "a * 10"));
  Persist.checkpoint p;
  Db.add_attr db ~type_name:"k" (Rule.intrinsic "c" (Value.Int 5));
  Db.with_txn db (fun () -> Db.set db i "c" (Value.Int 6));
  let sv = Db.schema_step_count db in
  Persist.close p;
  let p2 = Persist.recover ~dir (base_schema ()) in
  let db2 = Persist.db p2 in
  Alcotest.(check int) "schema version survives recovery" sv (Db.schema_step_count db2);
  Alcotest.(check bool) "pre-checkpoint derived attr recovered" true
    (Value.equal (Db.get db2 i "b") (Value.Int 10));
  Alcotest.(check bool) "post-checkpoint intrinsic recovered" true
    (Value.equal (Db.get db2 i "c") (Value.Int 6));
  Persist.close p2;
  rm_rf dir

(* ------------------------------------------------------------------ *)
(* CWAL2 fixture: old logs recover under the CWAL3 reader               *)

(* Under `dune runtest` the fixture is copied next to the test binary's
   cwd; under a bare `dune exec` from the repo root it lives in test/. *)
let fixture_dir =
  if Sys.file_exists "fixtures/cwal2" then "fixtures/cwal2" else "test/fixtures/cwal2"

let fixture_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "v" (Value.Int 0));
  sch

(* The JSON record the fixture's expected.json holds: recovery counters
   and the full observable data state. *)
let fixture_json dir =
  let { Wal.generation; schema_version; torn; valid_end; records; _ } =
    Wal.read (Filename.concat dir "wal.log")
  in
  let p = Persist.recover ~dir (fixture_schema ()) in
  let db = Persist.db p in
  let ids = List.sort compare (Db.instance_ids db) in
  let inst id =
    Printf.sprintf "[%d,%s]" id (Value.to_string (Db.get db ~watch:false id "v"))
  in
  let links =
    List.concat_map
      (fun id ->
        List.map (Printf.sprintf "[%d,%d]" id) (List.sort compare (Db.related db id "deps")))
      ids
  in
  let json =
    Printf.sprintf
      "{\"generation\":%d,\"schema_version\":%d,\"torn\":%b,\"valid_end\":%d,\"records\":%d,\"replayed\":%d,\"instances\":[%s],\"links\":[%s]}"
      generation schema_version torn valid_end (List.length records) (Persist.replayed p)
      (String.concat "," (List.map inst ids))
      (String.concat "," links)
  in
  Persist.close p;
  json

let test_cwal2_fixture_recovers () =
  let wal_src = Filename.concat fixture_dir "wal.log" in
  let expected = String.trim (read_file (Filename.concat fixture_dir "expected.json")) in
  (* Recover in a scratch copy: recovery truncates/appends to the log,
     and the committed fixture must stay pristine. *)
  let dir = temp_dir () in
  write_file (Filename.concat dir "wal.log") (read_file wal_src);
  Alcotest.(check string) "CWAL2 log recovers to the recorded counters and state" expected
    (fixture_json dir);
  rm_rf dir

(* Regenerate the fixture pair (CWAL2-header log + expected.json):
     CACTIS_REGEN_CWAL2=test/fixtures/cwal2 dune exec test/test_schema_versioning.exe
   The log is produced by the current writer, then its CWAL3 header is
   swapped for a CWAL2 one (record framing is format-independent). *)
let regenerate_fixture out_dir =
  let dir = temp_dir () in
  let db = Db.create (fixture_schema ()) in
  let p = Persist.attach ~sync_every:1 ~dir db in
  let a =
    Db.with_txn db (fun () ->
        let a = Db.create_instance db "node" in
        Db.set db a "v" (Value.Int 10);
        a)
  in
  let b =
    Db.with_txn db (fun () ->
        let b = Db.create_instance db "node" in
        Db.set db b "v" (Value.Int (-7));
        Db.link db ~from_id:a ~rel:"deps" ~to_id:b;
        b)
  in
  Db.with_txn db (fun () -> Db.set db a "v" (Value.Int 42));
  Db.undo_last db;
  Db.redo db;
  Db.with_txn db (fun () ->
      let c = Db.create_instance db "node" in
      Db.link db ~from_id:b ~rel:"deps" ~to_id:c);
  Persist.close p;
  let wal = read_file (Filename.concat dir "wal.log") in
  let body = String.sub wal Wal.header_len (String.length wal - Wal.header_len) in
  let v2_header = Bytes.make 14 '\000' in
  Bytes.blit_string "CWAL2\n" 0 v2_header 0 6;
  (* generation 0: the log was never checkpointed *)
  let converted = Bytes.to_string v2_header ^ body in
  write_file (Filename.concat out_dir "wal.log") converted;
  rm_rf dir;
  let check_dir = temp_dir () in
  write_file (Filename.concat check_dir "wal.log") converted;
  write_file (Filename.concat out_dir "expected.json") (fixture_json check_dir ^ "\n");
  rm_rf check_dir;
  Printf.printf "regenerated %s/{wal.log,expected.json}\n" out_dir

let () =
  match Sys.getenv_opt "CACTIS_REGEN_CWAL2" with
  | Some out_dir ->
    regenerate_fixture out_dir;
    exit 0
  | None -> ()

let () =
  Alcotest.run "cactis-schema-versioning"
    [
      ( "property",
        [ QCheck_alcotest.to_alcotest prop_interleaving ] );
      ( "checkout",
        [
          Alcotest.test_case "checkout predating add_attr hides the attribute" `Quick
            test_checkout_predates_add_attr;
        ] );
      ( "version stamps",
        [
          Alcotest.test_case "attach rejects log schema version ahead" `Quick
            test_attach_rejects_sv_ahead;
          Alcotest.test_case "recover rejects schema version mismatch" `Quick
            test_recover_rejects_sv_mismatch;
          Alcotest.test_case "schema deltas round-trip through checkpoint+recover" `Quick
            test_schema_delta_roundtrip_recovers;
        ] );
      ( "format compat",
        [
          Alcotest.test_case "CWAL2 fixture recovers under the CWAL3 reader" `Quick
            test_cwal2_fixture_recovers;
        ] );
    ]
