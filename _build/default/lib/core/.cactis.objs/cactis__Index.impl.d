lib/core/index.ml: Db Hashtbl Instance List Schema Store String Value
