lib/core/db.ml: Cactis_util Engine Errors Hashtbl Instance List Schema Store String Txn Value
