(* The paper's own §2.1 running example, verbatim:

   "the type Persons may have a relationship called Mother, which points
   back to Persons, and a relationship called Cars which points to the
   type Automobiles.  A Car Buff might be defined as the subtype defined
   by the predicate which calculates all Persons who own more than three
   cars.  A constraint might be that all Persons must own at least one
   car." *)

module Value = Cactis.Value
module Db = Cactis.Db
module Errors = Cactis.Errors
module Elaborate = Cactis_ddl.Elaborate
module Typecheck = Cactis_ddl.Typecheck
module Parser = Cactis_ddl.Parser

let persons_src =
  {|
  object class automobiles is
    relationships
      owner : persons one socket inverse cars;
    attributes
      plate : string;
  end object;

  object class persons is
    relationships
      mother   : persons multi socket inverse children;
      children : persons multi plug   inverse mother;
      cars     : automobiles multi plug inverse owner;
    attributes
      name : string;
      age  : int := 0;
    rules
      car_count = count(cars.plate);
    constraints
      owns_a_car = car_count >= 1 message "all Persons must own at least one car";
  end object;

  subtype car_buff of persons where car_count > 3 end subtype;
|}

let give_car db person plate =
  Db.with_txn db (fun () ->
      let car = Db.create_instance db "automobiles" in
      Db.set db car "plate" (Value.Str plate);
      Db.link db ~from_id:person ~rel:"cars" ~to_id:car;
      car)

let new_person db name =
  (* Creating a person trips the at-least-one-car constraint unless a car
     arrives in the same transaction — exactly the semantics of a
     constraint checked at commit. *)
  Db.with_txn db (fun () ->
      let p = Db.create_instance db "persons" in
      Db.set db p "name" (Value.Str name);
      let car = Db.create_instance db "automobiles" in
      Db.set db car "plate" (Value.Str (name ^ "-car-1"));
      Db.link db ~from_id:p ~rel:"cars" ~to_id:car;
      p)

let test_schema_checks () =
  Alcotest.(check (list string)) "type-checks" [] (Typecheck.check (Parser.parse_schema persons_src))

let test_constraint_at_least_one_car () =
  let db = Db.create (Elaborate.load_string persons_src) in
  (* A carless person cannot be committed... *)
  (match
     Db.with_txn db (fun () ->
         let p = Db.create_instance db "persons" in
         Db.set db p "name" (Value.Str "walker"))
   with
  | _ -> Alcotest.fail "expected constraint violation"
  | exception Errors.Constraint_violation { message; _ } ->
    Alcotest.(check string) "paper's constraint" "all Persons must own at least one car" message);
  Alcotest.(check (list int)) "rolled back" [] (Db.instances_of_type db "persons");
  (* ...but a person created together with a car commits. *)
  let p = new_person db "driver" in
  Alcotest.(check int) "one car" 1 (Value.as_int (Db.get db p "car_count"))

let test_car_buff_subtype () =
  let db = Db.create (Elaborate.load_string persons_src) in
  let alice = new_person db "alice" in
  let bob = new_person db "bob" in
  Alcotest.(check (list int)) "no car buffs yet" [] (Db.subtype_members db "car_buff");
  (* Alice accumulates cars; "more than three" means the fourth tips her
     over. *)
  ignore (give_car db alice "A-2");
  ignore (give_car db alice "A-3");
  Alcotest.(check bool) "three cars: not yet a buff" false (Db.in_subtype db alice "car_buff");
  ignore (give_car db alice "A-4");
  Alcotest.(check bool) "four cars: car buff" true (Db.in_subtype db alice "car_buff");
  Alcotest.(check (list int)) "membership" [ alice ] (Db.subtype_members db "car_buff");
  (* Selling a car (breaking the link) demotes her — but she may not drop
     below one car. *)
  let car = List.hd (Db.related db alice "cars") in
  Db.unlink db ~from_id:alice ~rel:"cars" ~to_id:car;
  Alcotest.(check bool) "demoted" false (Db.in_subtype db alice "car_buff");
  ignore bob

let test_cannot_sell_last_car () =
  let db = Db.create (Elaborate.load_string persons_src) in
  let p = new_person db "carol" in
  let car = List.hd (Db.related db p "cars") in
  match Db.unlink db ~from_id:p ~rel:"cars" ~to_id:car with
  | _ -> Alcotest.fail "expected violation"
  | exception Errors.Constraint_violation _ ->
    Alcotest.(check int) "car kept" 1 (List.length (Db.related db p "cars"))

let test_mother_relationship () =
  let db = Db.create (Elaborate.load_string persons_src) in
  let mum = new_person db "mum" in
  let kid = new_person db "kid" in
  Db.link db ~from_id:kid ~rel:"mother" ~to_id:mum;
  Alcotest.(check (list int)) "mother" [ mum ] (Db.related db kid "mother");
  Alcotest.(check (list int)) "children inverse" [ kid ] (Db.related db mum "children")

let () =
  Alcotest.run "cactis-paper-examples"
    [
      ( "persons-and-automobiles",
        [
          Alcotest.test_case "schema type-checks" `Quick test_schema_checks;
          Alcotest.test_case "at-least-one-car constraint" `Quick test_constraint_at_least_one_car;
          Alcotest.test_case "car buff subtype (> 3 cars)" `Quick test_car_buff_subtype;
          Alcotest.test_case "cannot sell the last car" `Quick test_cannot_sell_last_car;
          Alcotest.test_case "mother relationship" `Quick test_mother_relationship;
        ] );
    ]
