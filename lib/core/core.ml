let placeholder () = ()
