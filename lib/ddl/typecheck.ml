type ty =
  | T_int
  | T_float
  | T_bool
  | T_string
  | T_time
  | T_unknown

let ty_name = function
  | T_int -> "int"
  | T_float -> "float"
  | T_bool -> "bool"
  | T_string -> "string"
  | T_time -> "time"
  | T_unknown -> "unknown"

let of_decl = function
  | Ast.T_int -> T_int
  | Ast.T_float -> T_float
  | Ast.T_bool -> T_bool
  | Ast.T_string -> T_string
  | Ast.T_time -> T_time


(* ------------------------------------------------------------------ *)
(* Schema tables                                                       *)

type attr_info = {
  mutable ty : ty;
  derived : bool;
}

type class_info = {
  attrs : (string, attr_info) Hashtbl.t;
  rels : (string, string * string) Hashtbl.t;  (* rel -> (target class, inverse) *)
  exports : (string * string, string) Hashtbl.t;  (* (rel, export) -> attr *)
}

type env = {
  classes : (string, class_info) Hashtbl.t;
  mutable errors : string list;
  mutable changed : bool;
}

let error env fmt = Format.kasprintf (fun s -> env.errors <- s :: env.errors) fmt

let class_info env name = Hashtbl.find_opt env.classes name

let build_tables (items : Ast.schema) =
  let env = { classes = Hashtbl.create 8; errors = []; changed = false } in
  let ensure_class name =
    match Hashtbl.find_opt env.classes name with
    | Some ci -> ci
    | None ->
      let ci = { attrs = Hashtbl.create 8; rels = Hashtbl.create 4; exports = Hashtbl.create 4 } in
      Hashtbl.add env.classes name ci;
      ci
  in
  List.iter
    (function
      | Ast.Class cl ->
        let ci = ensure_class cl.Ast.cl_name in
        List.iter
          (fun (d : Ast.attr_decl) ->
            Hashtbl.replace ci.attrs d.ad_name { ty = of_decl d.ad_type; derived = false })
          cl.Ast.cl_attrs;
        List.iter
          (fun (r : Ast.rule_decl) ->
            Hashtbl.replace ci.attrs r.ru_name { ty = T_unknown; derived = true })
          cl.Ast.cl_rules;
        List.iter
          (fun (c : Ast.constraint_decl) ->
            Hashtbl.replace ci.attrs c.cd_name { ty = T_bool; derived = true })
          cl.Ast.cl_constraints;
        List.iter
          (fun (r : Ast.rel_decl) ->
            Hashtbl.replace ci.rels r.rd_name (r.rd_target, r.rd_inverse))
          cl.Ast.cl_rels;
        List.iter
          (fun (d : Ast.transmit_decl) ->
            Hashtbl.replace ci.exports (d.tr_rel, d.tr_export) d.tr_attr)
          cl.Ast.cl_transmits
      | Ast.Subtype su -> (
        (* Extra attributes and rules live on the parent class. *)
        match Hashtbl.find_opt env.classes su.Ast.su_parent with
        | None -> ()  (* reported during checking *)
        | Some ci ->
          List.iter
            (fun (d : Ast.attr_decl) ->
              Hashtbl.replace ci.attrs d.ad_name { ty = of_decl d.ad_type; derived = false })
            su.Ast.su_attrs;
          List.iter
            (fun (r : Ast.rule_decl) ->
              Hashtbl.replace ci.attrs r.ru_name { ty = T_unknown; derived = true })
            su.Ast.su_rules))
    items;
  env

(* ------------------------------------------------------------------ *)
(* Unification / operator typing                                       *)

(* Least upper bound used for if-branches, defaults and aggregates. *)
let unify env ~where a b =
  match (a, b) with
  | T_unknown, t | t, T_unknown -> t
  | a, b when a = b -> a
  | T_int, T_float | T_float, T_int -> T_float
  | a, b ->
    error env "%s: cannot reconcile %s with %s" where (ty_name a) (ty_name b);
    a

let check_bool env ~where t =
  match t with
  | T_bool | T_unknown -> ()
  | t -> error env "%s: expected bool, found %s" where (ty_name t)

(* Mirrors Value.add / Value.sub semantics. *)
let type_add env ~where a b =
  match (a, b) with
  | T_unknown, _ | _, T_unknown -> T_unknown
  | T_string, T_string -> T_string
  | T_time, (T_float | T_int | T_time) -> T_time
  | T_int, T_int -> T_int
  | (T_int | T_float), (T_int | T_float) -> T_float
  | a, b ->
    error env "%s: cannot add %s and %s" where (ty_name a) (ty_name b);
    T_unknown

let type_sub env ~where a b =
  match (a, b) with
  | T_unknown, _ | _, T_unknown -> T_unknown
  | T_time, T_time -> T_float
  | T_time, (T_float | T_int) -> T_time
  | T_int, T_int -> T_int
  | (T_int | T_float), (T_int | T_float) -> T_float
  | a, b ->
    error env "%s: cannot subtract %s from %s" where (ty_name b) (ty_name a);
    T_unknown

let type_mul_div env ~where a b =
  match (a, b) with
  | T_unknown, _ | _, T_unknown -> T_unknown
  | T_int, T_int -> T_int
  | (T_int | T_float), (T_int | T_float) -> T_float
  | a, b ->
    error env "%s: cannot multiply/divide %s and %s" where (ty_name a) (ty_name b);
    T_unknown

let comparable env ~where a b =
  match (a, b) with
  | T_unknown, _ | _, T_unknown -> ()
  | a, b when a = b -> ()
  | (T_int | T_float), (T_int | T_float) -> ()
  | a, b -> error env "%s: comparing %s with %s" where (ty_name a) (ty_name b)

(* ------------------------------------------------------------------ *)
(* Expression inference                                                *)

let rec infer_expr env ~where ~class_name expr : ty =
  let recur e = infer_expr env ~where ~class_name e in
  match expr with
  | Ast.Lit v -> (
    match v with
    | Ast.Value.Int _ -> T_int
    | Ast.Value.Float _ -> T_float
    | Ast.Value.Bool _ -> T_bool
    | Ast.Value.Str _ -> T_string
    | Ast.Value.Time _ -> T_time
    | Ast.Value.Null | Ast.Value.Arr _ | Ast.Value.Rec _ -> T_unknown)
  | Ast.Self_attr a -> self_attr_type env ~where ~class_name a
  | Ast.Rel_one (r, a) -> rel_attr_type env ~where ~class_name r a
  | Ast.Rel_agg { agg; rel; attr; default } -> (
    let elem = rel_attr_type env ~where ~class_name rel attr in
    let default_ty = Option.map recur default in
    match agg with
    | Ast.Count -> T_int
    | Ast.All | Ast.Any ->
      check_bool env ~where elem;
      T_bool
    | Ast.Max | Ast.Min -> (
      match default_ty with
      | Some d -> unify env ~where elem d
      | None -> elem)
    | Ast.Sum -> (
      (match elem with
      | T_int | T_float | T_unknown -> ()
      | t -> error env "%s: sum over %s values" where (ty_name t));
      match default_ty with
      | Some d -> unify env ~where elem d
      | None -> elem))
  | Ast.Unop (Ast.Not, e) ->
    check_bool env ~where (recur e);
    T_bool
  | Ast.Unop (Ast.Neg, e) -> (
    match recur e with
    | (T_int | T_float | T_unknown) as t -> t
    | t ->
      error env "%s: negating %s" where (ty_name t);
      T_unknown)
  | Ast.Binop (op, a, b) -> (
    let ta = recur a and tb = recur b in
    match op with
    | Ast.Add -> type_add env ~where ta tb
    | Ast.Sub -> type_sub env ~where ta tb
    | Ast.Mul | Ast.Div -> type_mul_div env ~where ta tb
    | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      comparable env ~where ta tb;
      T_bool
    | Ast.And | Ast.Or ->
      check_bool env ~where ta;
      check_bool env ~where tb;
      T_bool)
  | Ast.If (c, t, e) ->
    check_bool env ~where (recur c);
    unify env ~where (recur t) (recur e)
  | Ast.Call (name, args) -> (
    let tys = List.map recur args in
    match (name, tys) with
    | "time", [ t ] ->
      (match t with
      | T_int | T_float | T_unknown -> ()
      | t -> error env "%s: time() of %s" where (ty_name t));
      T_time
    | ("later_of" | "earlier_of"), [ a; b ] -> unify env ~where a b
    | "later_than", [ a; b ] ->
      comparable env ~where a b;
      T_bool
    | "abs", [ t ] -> (
      match t with
      | (T_int | T_float | T_unknown) as t -> t
      | t ->
        error env "%s: abs of %s" where (ty_name t);
        T_unknown)
    | "days_between", [ a; b ] ->
      List.iter
        (fun t ->
          match t with
          | T_time | T_unknown -> ()
          | t -> error env "%s: days_between over %s" where (ty_name t))
        [ a; b ];
      T_float
    | name, tys ->
      error env "%s: builtin %s does not accept %d argument(s)" where name (List.length tys);
      T_unknown)

and self_attr_type env ~where ~class_name a =
  match class_info env class_name with
  | None -> T_unknown
  | Some ci -> (
    match Hashtbl.find_opt ci.attrs a with
    | Some info -> info.ty
    | None ->
      error env "%s: class %s has no attribute %s" where class_name a;
      T_unknown)

and rel_attr_type env ~where ~class_name r a =
  match class_info env class_name with
  | None -> T_unknown
  | Some ci -> (
    match Hashtbl.find_opt ci.rels r with
    | None ->
      error env "%s: class %s has no relationship %s" where class_name r;
      T_unknown
    | Some (target, inverse) -> (
      match class_info env target with
      | None -> T_unknown
      | Some tci -> (
        (* The transmitter may alias the requested name across its side
           (the inverse) of this relationship. *)
        let resolved =
          match Hashtbl.find_opt tci.exports (inverse, a) with
          | Some attr -> attr
          | None -> a
        in
        match Hashtbl.find_opt tci.attrs resolved with
        | Some info -> info.ty
        | None ->
          error env "%s: class %s (across %s) has no attribute %s" where target r resolved;
          T_unknown)))

(* ------------------------------------------------------------------ *)
(* Fixpoint over rule types                                            *)

let update env ci ~where ~class_name name expr =
  match Hashtbl.find_opt ci.attrs name with
  | None -> ()
  | Some info ->
    let t = infer_expr env ~where ~class_name expr in
    if info.ty = T_unknown && t <> T_unknown then begin
      info.ty <- t;
      env.changed <- true
    end
    else if info.ty <> T_unknown && t <> T_unknown && info.ty <> t then
      (* A second pass refined the type inconsistently (e.g. int vs
         float): unify reports if truly incompatible; numeric widening is
         accepted. *)
      info.ty <- unify env ~where info.ty t

let run_pass ~collect_errors env (items : Ast.schema) =
  let saved = env.errors in
  if not collect_errors then env.errors <- [];
  List.iter
    (function
      | Ast.Class cl -> (
        match class_info env cl.Ast.cl_name with
        | None -> ()
        | Some ci ->
          List.iter
            (fun (r : Ast.rule_decl) ->
              update env ci
                ~where:(Printf.sprintf "%s.%s" cl.Ast.cl_name r.ru_name)
                ~class_name:cl.Ast.cl_name r.ru_name r.ru_expr)
            cl.Ast.cl_rules;
          List.iter
            (fun (c : Ast.constraint_decl) ->
              let where = Printf.sprintf "%s.%s" cl.Ast.cl_name c.cd_name in
              let t = infer_expr env ~where ~class_name:cl.Ast.cl_name c.cd_expr in
              check_bool env ~where:(where ^ " (constraint)") t)
            cl.Ast.cl_constraints)
      | Ast.Subtype su -> (
        match class_info env su.Ast.su_parent with
        | None ->
          error env "subtype %s: unknown parent class %s" su.Ast.su_name su.Ast.su_parent
        | Some ci ->
          let where = Printf.sprintf "subtype %s" su.Ast.su_name in
          let t = infer_expr env ~where ~class_name:su.Ast.su_parent su.Ast.su_predicate in
          check_bool env ~where:(where ^ " (predicate)") t;
          List.iter
            (fun (r : Ast.rule_decl) ->
              update env ci
                ~where:(Printf.sprintf "%s.%s" su.Ast.su_name r.ru_name)
                ~class_name:su.Ast.su_parent r.ru_name r.ru_expr)
            su.Ast.su_rules))
    items;
  if not collect_errors then env.errors <- saved

let check items =
  let env = build_tables items in
  (* Iterate silently until types stabilize, then one reporting pass. *)
  let rec fixpoint budget =
    env.changed <- false;
    run_pass ~collect_errors:false env items;
    if env.changed && budget > 0 then fixpoint (budget - 1)
  in
  let attr_count =
    Hashtbl.fold (fun _ ci acc -> acc + Hashtbl.length ci.attrs) env.classes 0
  in
  fixpoint (attr_count + 2);
  run_pass ~collect_errors:true env items;
  (* Defaults of declared attributes must be constant and well-typed. *)
  List.iter
    (function
      | Ast.Class cl ->
        List.iter
          (fun (d : Ast.attr_decl) ->
            match d.ad_default with
            | None -> ()
            | Some e ->
              let where = Printf.sprintf "%s.%s (default)" cl.Ast.cl_name d.ad_name in
              let t = infer_expr env ~where ~class_name:cl.Ast.cl_name e in
              ignore (unify env ~where (of_decl d.ad_type) t))
          cl.Ast.cl_attrs
      | Ast.Subtype _ -> ())
    items;
  List.rev env.errors |> List.sort_uniq compare

let check_exn items =
  match check items with
  | [] -> ()
  | e :: _ -> raise (Ddl_error.Error e)

let infer items ~class_name ~attr =
  let env = build_tables items in
  let rec fixpoint budget =
    env.changed <- false;
    run_pass ~collect_errors:false env items;
    if env.changed && budget > 0 then fixpoint (budget - 1)
  in
  fixpoint 64;
  match class_info env class_name with
  | None -> raise Not_found
  | Some ci -> (
    match Hashtbl.find_opt ci.attrs attr with
    | Some info -> info.ty
    | None -> raise Not_found)
