type state =
  | Up_to_date
  | Out_of_date
  | In_progress

type slot = {
  mutable value : Value.t;
  mutable state : state;
}

type links = {
  mutable ids : int array;
  mutable n : int;
}

type t = {
  id : int;
  type_name : string;
  layout : Schema.layout;
  mutable slots : slot array;
  mutable links : links array;
  mutable alive : bool;
}

let fresh_slot (si : Schema.slot_info) =
  match si.Schema.si_def.Schema.kind with
  | Schema.Intrinsic default -> { value = default; state = Up_to_date }
  | Schema.Derived _ -> { value = Value.Null; state = Out_of_date }

let fresh_links () = { ids = [||]; n = 0 }

let create ~id ~layout =
  Schema.refresh_layout layout;
  {
    id;
    type_name = layout.Schema.lay_type;
    layout;
    slots = Array.map fresh_slot layout.Schema.lay_slots;
    links = Array.init (Array.length layout.Schema.lay_links) (fun _ -> fresh_links ());
    alive = true;
  }

(* Extend the arrays up to the current layout after a DDL change.  New
   slots start [Null]/[Out_of_date] regardless of kind — the lazy-slot
   discipline the evaluators already handle (an out-of-date intrinsic is
   patched to its schema default on first touch). *)
let sync t =
  Schema.refresh_layout t.layout;
  let ns = Array.length t.layout.Schema.lay_slots in
  if Array.length t.slots < ns then begin
    let old = t.slots in
    let k = Array.length old in
    t.slots <-
      Array.init ns (fun i ->
          if i < k then old.(i) else { value = Value.Null; state = Out_of_date })
  end;
  let nl = Array.length t.layout.Schema.lay_links in
  if Array.length t.links < nl then begin
    let old = t.links in
    let k = Array.length old in
    t.links <- Array.init nl (fun i -> if i < k then old.(i) else fresh_links ())
  end

let slot_ix t ix =
  if ix < Array.length t.slots then t.slots.(ix)
  else begin
    sync t;
    t.slots.(ix)
  end

let find_slot t a = Schema.slot_index t.layout a
let find_slot_sym t sym = Schema.slot_index_sym t.layout sym
let find_link t r = Schema.link_index t.layout r

let slot t a =
  match find_slot t a with
  | Some ix -> slot_ix t ix
  | None -> Errors.unknown "type %s has no attribute %s" t.type_name a

let slot_opt t a =
  match find_slot t a with
  | Some ix -> Some (slot_ix t ix)
  | None -> None

let links_ix t ix =
  if ix < Array.length t.links then t.links.(ix)
  else begin
    sync t;
    t.links.(ix)
  end

let linked_ix t ix =
  let l = links_ix t ix in
  let rec go i acc = if i < 0 then acc else go (i - 1) (l.ids.(i) :: acc) in
  go (l.n - 1) []

let iter_linked t ix f =
  let l = links_ix t ix in
  for i = 0 to l.n - 1 do
    f l.ids.(i)
  done

let link_count_ix t ix = (links_ix t ix).n

let linked t rel = match find_link t rel with Some ix -> linked_ix t ix | None -> []

let add_link_ix t ix id =
  let l = links_ix t ix in
  let cap = Array.length l.ids in
  if l.n = cap then begin
    let bigger = Array.make (max 4 (2 * cap)) 0 in
    Array.blit l.ids 0 bigger 0 l.n;
    l.ids <- bigger
  end;
  l.ids.(l.n) <- id;
  l.n <- l.n + 1

let add_link t rel id =
  match find_link t rel with
  | Some ix -> add_link_ix t ix id
  | None -> Errors.unknown "type %s has no relationship %s" t.type_name rel

let remove_link_ix t ix id =
  let l = links_ix t ix in
  let rec find i = if i >= l.n then -1 else if l.ids.(i) = id then i else find (i + 1) in
  let i = find 0 in
  if i < 0 then false
  else begin
    Array.blit l.ids (i + 1) l.ids i (l.n - i - 1);
    l.n <- l.n - 1;
    true
  end

let remove_link t rel id =
  match find_link t rel with Some ix -> remove_link_ix t ix id | None -> false

let all_links t =
  sync t;
  let acc = ref [] in
  Array.iteri
    (fun ix (li : Schema.link_info) ->
      let ids = linked_ix t ix in
      if ids <> [] then acc := (li.Schema.li_name, ids) :: !acc)
    t.layout.Schema.lay_links;
  List.sort compare !acc

let iter_slots t f =
  sync t;
  Array.iteri
    (fun ix (si : Schema.slot_info) -> f si.Schema.si_name t.slots.(ix))
    t.layout.Schema.lay_slots
