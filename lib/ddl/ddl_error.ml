(** DDL-level failure: parse-adjacent structural problems, typecheck
    rejections and analysis rejections all surface as this exception.
    Defined in its own module so that {!Typecheck} (raised from) and
    {!Elaborate} (which re-exports it as [Elaborate.Error] for
    compatibility) need not depend on each other. *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt
