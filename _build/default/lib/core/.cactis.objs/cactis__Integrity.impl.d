lib/core/integrity.ml: Cactis_storage Db Errors Format Hashtbl Instance List Schema Store String
