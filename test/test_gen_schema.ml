(* Full-pipeline property: random schemas through the DDL -> typecheck ->
   elaborate -> populate -> incremental evaluation vs oracle.

   The generator produces well-formed schemas by construction:
   - each class has int intrinsics [a0..], derived rules [r0..] where
     rule k only references intrinsics, earlier rules of the same
     instance, or any rule/intrinsic across the class's self-relationship
     (cross-instance references terminate because instance links are
     created old->new, keeping the data graph acyclic);
   - optionally a transmission alias is declared and read through.

   Properties checked per generated schema:
   - the type checker accepts it and infers int for every rule;
   - after random instances/links/sets, every derived attribute equals
     the from-scratch oracle;
   - the structural integrity auditor stays clean. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Engine = Cactis.Engine
module Rng = Cactis_util.Rng

(* Generator shared with test_analysis.ml. *)
module G = Gen_schemas

let gen = G.gen
let print_cfg = G.print_cfg
let schema_source = G.schema_source ~cross:true

let run_pipeline cfg =
  let src = schema_source cfg in
  let items = Cactis_ddl.Parser.parse_schema src in
  (* 1: type checking accepts, everything infers to int *)
  let type_errors = Cactis_ddl.Typecheck.check items in
  if type_errors <> [] then
    QCheck.Test.fail_reportf "type errors in generated schema:\n%s\n%s"
      (String.concat "\n" type_errors) src;
  let db = Db.create (Cactis_ddl.Elaborate.schema items) in
  let rng = Rng.create (cfg.G.seed + 1) in
  (* 2: populate: instances round-robin across classes; links old->new
     within the same class *)
  let ids =
    Array.init cfg.G.instances (fun i -> Db.create_instance db (Printf.sprintf "k%d" (i mod cfg.G.classes)))
  in
  Array.iteri
    (fun i id ->
      if i >= cfg.G.classes && Rng.chance rng 0.7 then begin
        (* link to a same-class newer instance: [down] points old->new *)
        let candidates =
          Array.to_list ids
          |> List.filteri (fun j _ -> j > i && j mod cfg.G.classes = i mod cfg.G.classes)
        in
        match candidates with
        | [] -> ()
        | l ->
          let target = Rng.pick_list rng l in
          if not (List.mem target (Db.related db id "down")) then
            Db.link db ~from_id:id ~rel:"down" ~to_id:target
      end)
    ids;
  (* 3: random updates and queries *)
  for _ = 1 to cfg.G.ops do
    let id = ids.(Rng.int rng cfg.G.instances) in
    if Rng.chance rng 0.6 then
      Db.set db id (Printf.sprintf "a%d" (Rng.int rng cfg.G.intrinsics)) (Value.Int (Rng.int rng 50))
    else
      ignore (Db.get db ~watch:(Rng.bool rng) id (Printf.sprintf "r%d" (Rng.int rng cfg.G.rules)))
  done;
  (* 4: every derived value matches the oracle; structure intact *)
  let ok_values =
    Array.for_all
      (fun id ->
        List.for_all
          (fun r ->
            let attr = Printf.sprintf "r%d" r in
            Value.equal (Db.get db ~watch:false id attr)
              (Engine.oracle_value (Db.engine db) id attr))
          (List.init cfg.G.rules (fun r -> r)))
      ids
  in
  let clean = Cactis.Integrity.check db = [] in
  if not ok_values then QCheck.Test.fail_reportf "oracle mismatch for schema:\n%s" src;
  if not clean then QCheck.Test.fail_reportf "integrity violation for schema:\n%s" src;
  true

let prop_pipeline =
  QCheck.Test.make ~name:"random schemas: typecheck, elaborate, evaluate, oracle" ~count:150
    (QCheck.make ~print:print_cfg gen)
    run_pipeline

let () =
  Alcotest.run "cactis-gen-schema"
    [ ("pipeline", [ QCheck_alcotest.to_alcotest prop_pipeline ]) ]
