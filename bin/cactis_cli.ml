(* cactis — command-line front end.

   Subcommands:
     check   FILE.cactis            parse + elaborate a schema, report it
     fmt     FILE.cactis            pretty-print the schema
     lint    FILE.cactis...         static analysis: circularity, dead rules, dangling refs
                                    (--fix applies machine-applicable repairs via the printer)
     analyze FILE.cactis            cost/convergence abstract interpretation (--db, --json)
     run     FILE.cactis SCRIPT     load a schema and execute a script
     serve   FILE.cactis            serve the database to TCP clients (parallel readers)
                                    (--repl-port ships the WAL to follower replicas;
                                     --follow makes this process a read-only replica)
     replicate FILE.cactis          headless follower: mirror a writer, report lag/integrity
     stats   FILE.cactis SCRIPT     run a script, report counters/latencies/profile
     stats   --connect PORT         live counters/latencies of a running server (--watch)
     trace   FILE.cactis SCRIPT     run a script, export a Chrome trace JSON
     save    FILE.cactis SNAPSHOT   re-encode a snapshot (text <-> binary)
     recover FILE.cactis DIR        recover a database from checkpoint + WAL
     log     FILE.cactis DIR        show version history incl. schema steps
     doctor  DUMP.cfr               post-mortem: flight-dump timeline correlated with the WAL
     metrics-lint FILE              validate an OpenMetrics text exposition (CI scrape check)
     demo    milestones|make|flow   run a built-in demonstration

   Built with cmdliner; see `cactis --help`. *)

module Schema = Cactis.Schema
module Db = Cactis.Db
module Snapshot = Cactis.Snapshot
module Persist = Cactis.Persist
module Counters = Cactis_util.Counters
module Trace = Cactis_obs.Trace
module Histogram = Cactis_obs.Histogram
module Profile = Cactis_obs.Profile
module Server = Cactis_net.Server
module Client = Cactis_net.Client
module Publisher = Cactis_repl.Publisher
module Follower = Cactis_repl.Follower
module Repl_error = Cactis_repl.Repl_error
module Repl_proto = Cactis_repl.Repl_proto
module Flight = Cactis_obs.Flight
module Metrics = Cactis_obs.Metrics
module Watchdog = Cactis_obs.Watchdog
module Doctor = Cactis.Doctor

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_schema path =
  let src = read_file path in
  (Cactis_ddl.Parser.parse_schema src, Cactis_ddl.Elaborate.load_string src)

let handle_errors f =
  try f () with
  | Cactis_ddl.Lexer.Error { line; col; message } ->
    Printf.eprintf "lexical error at %d:%d: %s\n" line col message;
    exit 1
  | Cactis_ddl.Parser.Error { line; col; message } ->
    Printf.eprintf "syntax error at %d:%d: %s\n" line col message;
    exit 1
  | Cactis_ddl.Elaborate.Error message ->
    Printf.eprintf "schema error: %s\n" message;
    exit 1
  | Cactis.Errors.Unknown m | Cactis.Errors.Type_error m ->
    Printf.eprintf "error: %s\n" m;
    exit 1
  | Script.Script_error (line, message) ->
    Printf.eprintf "script error at line %d: %s\n" line message;
    exit 1
  | Snapshot.Parse_error { line; message } ->
    Printf.eprintf "snapshot error at line %d: %s\n" line message;
    exit 1
  | Cactis.Codec.Error { offset; message } ->
    Printf.eprintf "snapshot error at byte %d: %s\n" offset message;
    exit 1
  | Sys_error m ->
    Printf.eprintf "%s\n" m;
    exit 1

(* Snapshots are auto-detected: binary by magic, text otherwise. *)
let load_snapshot sch data =
  if Snapshot.is_binary data then Snapshot.load_binary sch data else Snapshot.load sch data

(* ---- check ---- *)

let check_cmd path verbose =
  handle_errors (fun () ->
      let items, sch = load_schema path in
      (match Cactis_ddl.Typecheck.check items with
      | [] -> ()
      | errors ->
        List.iter (fun e -> Printf.eprintf "type error: %s\n" e) errors;
        exit 1);
      Printf.printf "%s: ok (parsed, type-checked, elaborated)\n" path;
      if verbose then print_string (Schema.describe sch);
      List.iter
        (fun tn ->
          let attrs = Schema.attrs sch ~type_name:tn in
          let derived =
            List.length
              (List.filter
                 (fun (d : Schema.attr_def) ->
                   match d.Schema.kind with Schema.Derived _ -> true | _ -> false)
                 attrs)
          in
          let cons =
            List.length (List.filter (fun (d : Schema.attr_def) -> d.Schema.constraint_ <> None) attrs)
          in
          Printf.printf "  class %-20s %2d attrs (%d derived, %d constraints), %d relationships\n"
            tn (List.length attrs) derived cons
            (List.length (Schema.rels sch ~type_name:tn)))
        (Schema.type_names sch);
      List.iter (fun s -> Printf.printf "  subtype %s\n" s) (Schema.subtype_names sch))

(* ---- fmt ---- *)

let fmt_cmd path =
  handle_errors (fun () ->
      let items, _ = load_schema path in
      print_string (Cactis_ddl.Pretty.schema_to_string items))

(* ---- run ---- *)

let write_file path contents =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> output_string oc contents)

let run_cmd schema_path script_path snapshot persist save_path save_text =
  handle_errors (fun () ->
      let _, sch = load_schema schema_path in
      let p, db =
        match (persist, snapshot) with
        | Some dir, _ ->
          let p = Persist.recover ~dir sch in
          (Some p, Persist.db p)
        | None, Some path -> (None, load_snapshot sch (read_file path))
        | None, None -> (None, Db.create sch)
      in
      let output = Script.run db (read_file script_path) in
      print_string output;
      (match save_path with
      | Some out ->
        write_file out (if save_text then Snapshot.save db else Snapshot.save_binary db)
      | None -> ());
      match p with Some p -> Persist.close p | None -> ())

(* ---- repl ---- *)

let repl_cmd schema_path snapshot =
  handle_errors (fun () ->
      let _, sch = load_schema schema_path in
      let db =
        match snapshot with
        | Some path -> load_snapshot sch (read_file path)
        | None -> Db.create sch
      in
      print_endline "Cactis interactive session. Commands: new/set/get/link/unlink/delete,";
      print_endline "begin/commit/abort, undo/redo, tag/checkout, select, members, dump, quit.";
      Script.repl db ~input:stdin ~output:stdout)

(* ---- save (snapshot re-encoding) ---- *)

let save_cmd schema_path snapshot_path out text =
  handle_errors (fun () ->
      let _, sch = load_schema schema_path in
      let data = read_file snapshot_path in
      let db = load_snapshot sch data in
      let encoded = if text then Snapshot.save db else Snapshot.save_binary db in
      (match out with
      | Some path -> write_file path encoded
      | None -> print_string encoded);
      Printf.eprintf "%s: %d instances, %d -> %d bytes (%s)\n" snapshot_path
        (List.length (Db.instance_ids db))
        (String.length data) (String.length encoded)
        (if text then "text" else "binary"))

(* ---- recover ---- *)

let recover_cmd schema_path dir script checkpoint =
  handle_errors (fun () ->
      let _, sch = load_schema schema_path in
      let p = Persist.recover ~dir sch in
      let db = Persist.db p in
      Printf.printf "recovered %s: %d instances, %d logged deltas replayed%s\n" dir
        (List.length (Db.instance_ids db))
        (Persist.replayed p)
        (if Persist.recovered_torn p then " (torn log tail discarded)" else "");
      (match script with
      | Some path -> print_string (Script.run db (read_file path))
      | None -> ());
      if checkpoint then begin
        Persist.checkpoint p;
        Printf.printf "checkpointed: log truncated\n"
      end;
      Persist.close p)

(* ---- log ---- *)

let log_cmd schema_path dir ops =
  handle_errors (fun () ->
      let _, sch = load_schema schema_path in
      let p = Persist.recover ~dir sch in
      let db = Persist.db p in
      let history = Db.history db in
      Printf.printf "%s: %d committed versions, schema version %d\n" dir (List.length history)
        (Db.schema_step_count db);
      List.iter
        (fun (vid, (delta : Cactis.Txn.delta)) ->
          let schema_ops = List.filter Cactis.Txn.is_schema_op delta.Cactis.Txn.ops in
          Printf.printf "v%-4d %3d op%s%s%s\n" vid
            (List.length delta.Cactis.Txn.ops)
            (if List.length delta.Cactis.Txn.ops = 1 then "" else "s")
            (match delta.Cactis.Txn.label with Some l -> "  [" ^ l ^ "]" | None -> "")
            (if schema_ops = [] then ""
             else Printf.sprintf "  (%d schema step%s)" (List.length schema_ops)
                 (if List.length schema_ops = 1 then "" else "s"));
          let shown = if ops then delta.Cactis.Txn.ops else schema_ops in
          List.iter (fun op -> Format.printf "        %a@." Cactis.Txn.pp_op op) shown)
        history;
      Persist.close p)

(* ---- stats / trace ---- *)

(* Open the database the way `run` does: fresh, or recovered from a
   persistence directory so the WAL/checkpoint instrumentation is live. *)
let open_script_db sch persist =
  match persist with
  | Some dir ->
    let p = Persist.recover ~dir sch in
    (Some p, Persist.db p)
  | None -> (None, Db.create sch)

let pp_duration s =
  if s >= 1.0 then Printf.sprintf "%.3fs" s
  else if s >= 1e-3 then Printf.sprintf "%.3fms" (s *. 1e3)
  else Printf.sprintf "%.1fus" (s *. 1e6)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let profile_json (s : Profile.snapshot) =
  Printf.sprintf
    "{\"nodes_marked\":%d,\"edges_walked\":%d,\"cutoffs\":%d,\"evals\":%d,\
     \"distinct_evaluated\":%d,\"max_evals_per_attr\":%d,\"bound\":%d,\"work\":%d,\
     \"at_most_once\":%b,\"work_ratio\":%.4f}"
    s.Profile.p_nodes_marked s.p_edges_walked s.p_cutoffs s.p_evals s.p_distinct_evaluated
    s.p_max_evals_per_attr s.p_bound s.p_work (Profile.at_most_once s) (Profile.work_ratio s)

let hist_json (st : Histogram.stats) =
  Printf.sprintf
    "{\"name\":\"%s\",\"count\":%d,\"sum_s\":%.6f,\"mean_us\":%.2f,\"p50_us\":%.2f,\
     \"p95_us\":%.2f,\"p99_us\":%.2f,\"max_us\":%.2f}"
    (json_escape st.Histogram.st_name)
    st.Histogram.st_count st.Histogram.st_sum (st.Histogram.st_mean *. 1e6)
    (st.Histogram.st_p50 *. 1e6) (st.Histogram.st_p95 *. 1e6) (st.Histogram.st_p99 *. 1e6)
    (st.Histogram.st_max *. 1e6)

(* Remote mode: sample a running server's counters and per-verb service
   latencies over its own Stats verb.  With [--watch] the tables refresh
   in place (ANSI home+clear) every [interval] seconds until
   interrupted, reconnecting with exponential backoff (0.5 s doubling
   to 5 s) when the server restarts mid-watch. *)
let remote_stats port watch interval json =
  let render c =
    let counters, lats = Client.stats c in
    if json then begin
      let counters_j =
        counters
        |> List.map (fun (n, v) -> Printf.sprintf "\"%s\":%d" (json_escape n) v)
        |> String.concat ","
      in
      let lat_j =
        lats
        |> List.map (fun (l : Cactis_net.Proto.latency) ->
               Printf.sprintf
                 "{\"name\":\"%s\",\"count\":%d,\"mean_us\":%.2f,\"p50_us\":%.2f,\
                  \"p95_us\":%.2f,\"p99_us\":%.2f,\"max_us\":%.2f}"
                 (json_escape l.l_name) l.l_count (l.l_mean *. 1e6) (l.l_p50 *. 1e6)
                 (l.l_p95 *. 1e6) (l.l_p99 *. 1e6) (l.l_max *. 1e6))
        |> String.concat ","
      in
      Printf.printf "{\"counters\":{%s},\"latencies\":[%s]}\n%!" counters_j lat_j
    end
    else begin
      Printf.printf "== server counters (127.0.0.1:%d) ==\n" port;
      List.iter (fun (n, v) -> Printf.printf "  %-28s %d\n" n v) counters;
      print_endline "== per-verb service latencies ==";
      Printf.printf "  %-16s %8s  %10s %10s %10s %10s\n" "verb" "count" "p50" "p95" "p99" "max";
      List.iter
        (fun (l : Cactis_net.Proto.latency) ->
          Printf.printf "  %-16s %8d  %10s %10s %10s %10s\n" l.l_name l.l_count
            (pp_duration l.l_p50) (pp_duration l.l_p95) (pp_duration l.l_p99)
            (pp_duration l.l_max))
        lats;
      flush stdout
    end
  in
  if not watch then begin
    let c =
      try Client.connect ~port ()
      with Unix.Unix_error (e, _, _) ->
        Printf.eprintf "cannot connect to 127.0.0.1:%d: %s\n" port (Unix.error_message e);
        exit 1
    in
    Fun.protect ~finally:(fun () -> try Client.close c with _ -> ()) (fun () -> render c)
  end
  else begin
    let conn = ref None in
    let backoff = ref 0.5 in
    while true do
      (match !conn with
      | Some c -> (
        match
          (* Home + clear-to-end: repaint without scrollback spam. *)
          print_string "\027[H\027[J";
          render c;
          flush stdout
        with
        | () ->
          backoff := 0.5;
          Unix.sleepf interval
        | exception (Client.Transport _ | Unix.Unix_error _ | Sys_error _) ->
          (try Client.close c with _ -> ());
          conn := None)
      | None -> (
        match Client.connect ~port () with
        | c -> conn := Some c
        | exception (Unix.Unix_error _ | Sys_error _) ->
          Printf.printf "\027[H\027[Jcactis stats: 127.0.0.1:%d unreachable, retrying in %.1fs\n%!"
            port !backoff;
          Unix.sleepf !backoff;
          backoff := Float.min 5.0 (!backoff *. 2.0)))
    done
  end

let stats_cmd connect watch interval schema_path script_path persist json show_output =
  match connect with
  | Some port -> remote_stats port watch interval json
  | None ->
  let schema_path, script_path =
    match (schema_path, script_path) with
    | Some a, Some b -> (a, b)
    | _ ->
      prerr_endline "stats: SCHEMA and SCRIPT are required (or use --connect PORT)";
      exit 2
  in
  handle_errors (fun () ->
      let _, sch = load_schema schema_path in
      let p, db = open_script_db sch persist in
      Db.set_profiling db true;
      let output = Script.run db (read_file script_path) in
      if show_output then print_string output;
      (match p with Some p -> Persist.close p | None -> ());
      let counters = Counters.snapshot (Db.counters db) in
      let hists = Histogram.snapshot (Db.obs db).Cactis_obs.Ctx.hists in
      let prof = Db.last_profile db in
      (* Storage maintenance summary: buffer-pool effectiveness and
         incremental re-clustering progress (§2.3). *)
      let pager = Cactis.Store.pager (Db.store db) in
      let pool = Cactis_storage.Pager.pool pager in
      let hits = Cactis_storage.Buffer_pool.hits pool in
      let misses = Cactis_storage.Buffer_pool.misses pool in
      let hit_rate = 100. *. float_of_int hits /. float_of_int (max 1 (hits + misses)) in
      let recluster_steps = Counters.get (Db.counters db) "recluster_steps" in
      let recluster_moves = Counters.get (Db.counters db) "recluster_moves" in
      let pending = Cactis.Store.pending_moves (Db.store db) in
      if json then begin
        let counters_j =
          counters
          |> List.map (fun (n, v) -> Printf.sprintf "\"%s\":%d" (json_escape n) v)
          |> String.concat ","
        in
        let hists_j = hists |> List.map hist_json |> String.concat "," in
        let prof_j = match prof with Some s -> profile_json s | None -> "null" in
        let storage_j =
          Printf.sprintf
            "{\"pool_hits\":%d,\"pool_misses\":%d,\"hit_rate_pct\":%.1f,\
             \"recluster_steps\":%d,\"recluster_moves\":%d,\"pending_moves\":%d}"
            hits misses hit_rate recluster_steps recluster_moves pending
        in
        Printf.printf "{\"counters\":{%s},\"storage\":%s,\"histograms\":[%s],\"last_profile\":%s}\n"
          counters_j storage_j hists_j prof_j
      end
      else begin
        print_endline "== counters ==";
        List.iter (fun (n, v) -> Printf.printf "  %-28s %d\n" n v) counters;
        print_endline "== storage ==";
        Printf.printf "  pager hit rate               %.1f%% (%d hits / %d misses)\n" hit_rate
          hits misses;
        Printf.printf "  recluster steps              %d (%d moves, %d pending)\n" recluster_steps
          recluster_moves pending;
        print_endline "== latencies ==";
        Printf.printf "  %-16s %8s  %10s %10s %10s %10s\n" "histogram" "count" "p50" "p95" "p99"
          "max";
        List.iter
          (fun (st : Histogram.stats) ->
            Printf.printf "  %-16s %8d  %10s %10s %10s %10s\n" st.Histogram.st_name
              st.Histogram.st_count (pp_duration st.st_p50) (pp_duration st.st_p95)
              (pp_duration st.st_p99) (pp_duration st.st_max))
          hists;
        match prof with
        | Some s ->
          print_endline "== last propagation profile ==";
          Printf.printf "  %s\n" (Profile.to_string s);
          Printf.printf "  evaluated-at-most-once: %s\n"
            (if Profile.at_most_once s then "holds" else "VIOLATED")
        | None -> ()
      end)

let trace_cmd schema_path script_path persist out show_output =
  handle_errors (fun () ->
      let _, sch = load_schema schema_path in
      let p, db = open_script_db sch persist in
      Db.set_tracing db true;
      let output = Script.run db (read_file script_path) in
      if show_output then print_string output;
      (match p with Some p -> Persist.close p | None -> ());
      let tr = (Db.obs db).Cactis_obs.Ctx.trace in
      write_file out (Trace.to_chrome_json tr);
      Printf.printf "%s: %d events (%d dropped) — load in Perfetto or chrome://tracing\n" out
        (Trace.recorded tr) (Trace.dropped tr))

(* ---- serve ---- *)

let parse_hostport s =
  match String.rindex_opt s ':' with
  | Some i -> (
    let host = String.sub s 0 i in
    let host = if host = "" then "127.0.0.1" else host in
    match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
    | Some p -> (host, p)
    | None ->
      Printf.eprintf "error: bad HOST:PORT %S\n" s;
      exit 1)
  | None -> (
    match int_of_string_opt s with
    | Some p -> ("127.0.0.1", p)
    | None ->
      Printf.eprintf "error: bad HOST:PORT %S\n" s;
      exit 1)

let serve_cmd schema_path script_path port readers trace_sample persist metrics_port slow_ms
    watchdog_interval flight_dir repl_port follow =
  handle_errors (fun () ->
      let src = read_file schema_path in
      (* Each reader replica needs its own schema (schemas are mutable
         and cannot cross domains): re-elaborate from source per call. *)
      let make_schema () = Cactis_ddl.Elaborate.load_string src in
      let follower =
        match follow with
        | None -> None
        | Some upstream ->
          if persist <> None || script_path <> None || repl_port <> None then begin
            Printf.eprintf
              "error: --follow is exclusive with --persist, --script and --repl-port (the \
               replica's state comes from the writer)\n";
            exit 1
          end;
          let fhost, fport = parse_hostport upstream in
          (* Drift checks stay off: once the server starts, the replica
             db belongs to its writer domain. *)
          Some
            (Follower.create
               ~config:(Follower.config ~check_every:0 ())
               ~make_schema ~host:fhost ~port:fport ())
      in
      let p, db =
        match follower with
        | Some f ->
          Printf.printf "cactis: bootstrapping replica from %s ...\n%!" (Option.get follow);
          (None, Follower.sync f)
        | None -> open_script_db (make_schema ()) persist
      in
      (match script_path with
      | Some s -> ignore (Script.run db (read_file s))
      | None -> ());
      let publisher =
        match repl_port with
        | None -> None
        | Some rp -> (
          match p with
          | None ->
            Printf.eprintf "error: --repl-port requires --persist (the WAL is what is shipped)\n";
            exit 1
          | Some p ->
            (* Before Server.start, so the server's delta broadcast
               chains after the shipping hook. *)
            Some (Publisher.start ~config:(Publisher.config ~port:rp ()) p))
      in
      let watchdog =
        Option.map
          (fun s -> { Watchdog.default_config with Watchdog.wd_interval_s = s })
          watchdog_interval
      in
      let server =
        Server.start
          ~config:
            (Server.config ~port ~readers ~trace_sample ?metrics_port ~slow_ms ?watchdog
               ?flight_dir ~read_only:(follower <> None) ())
          ~make_schema db
      in
      (* Replica mode: shipped records now route through the server's
         writer domain, so the master and its reader replicas advance
         together. *)
      let follower_domain =
        Option.map
          (fun f ->
            Follower.set_apply f (Some (fun record -> ignore (Server.inject server record)));
            Domain.spawn (fun () ->
                try Follower.run f
                with e ->
                  Printf.eprintf "cactis: replication stopped: %s\n%!" (Repl_error.to_string e)))
          follower
      in
      Printf.printf "cactis: serving on 127.0.0.1:%d  (%d reader domain%s, version %d)\n"
        (Server.port server) readers
        (if readers = 1 then "" else "s")
        (Server.published_version server);
      (match Server.metrics_port server with
      | Some mp -> Printf.printf "cactis: metrics:     curl http://127.0.0.1:%d/metrics\n" mp
      | None -> ());
      (match publisher with
      | Some pub ->
        Printf.printf
          "cactis: shipping WAL on 127.0.0.1:%d  (replicate with: cactis serve %s --follow \
           127.0.0.1:%d)\n"
          (Publisher.port pub) schema_path (Publisher.port pub)
      | None -> ());
      (match follower with
      | Some _ ->
        Printf.printf "cactis: read-only replica of %s (commits are refused here)\n"
          (Option.get follow)
      | None -> ());
      Printf.printf "cactis: live stats:  cactis stats --connect %d --watch\n" (Server.port server);
      Printf.printf "cactis: stop with Ctrl-C\n%!";
      let stop = Atomic.make false in
      let handler = Sys.Signal_handle (fun _ -> Atomic.set stop true) in
      Sys.set_signal Sys.sigint handler;
      Sys.set_signal Sys.sigterm handler;
      (* SIGQUIT / SIGUSR2: dump the flight recorder without stopping —
         "what is the server doing right now" from another terminal. *)
      let dump_handler =
        Sys.Signal_handle
          (fun _ ->
            match Server.dump_flight server ~reason:"signal" with
            | Some path -> Printf.eprintf "cactis: flight dump written to %s\n%!" path
            | None -> Printf.eprintf "cactis: flight dump skipped (no --flight-dir)\n%!")
      in
      (try Sys.set_signal Sys.sigquit dump_handler with _ -> ());
      (try Sys.set_signal Sys.sigusr2 dump_handler with _ -> ());
      while not (Atomic.get stop) do
        try Unix.sleepf 0.2 with Unix.Unix_error (Unix.EINTR, _, _) -> ()
      done;
      Printf.printf "\ncactis: shutting down (version %d)\n%!" (Server.published_version server);
      (match follower with Some f -> Follower.stop f | None -> ());
      (match follower_domain with Some d -> Domain.join d | None -> ());
      (match publisher with Some pub -> Publisher.stop pub | None -> ());
      Server.stop server;
      (match p with Some p -> Persist.close p | None -> ());
      List.iter
        (fun (n, v) -> Printf.printf "  %-28s %d\n" n v)
        (Counters.snapshot (Server.counters server)))

(* ---- doctor ---- *)

let doctor_cmd dump_path wal_dir json limit =
  handle_errors (fun () ->
      match Doctor.load dump_path with
      | Error msg ->
        Printf.eprintf "%s: %s\n" dump_path msg;
        exit 1
      | Ok dump ->
        let report = Doctor.analyze ?wal_dir dump in
        if json then print_endline (Doctor.render_json report)
        else print_string (Doctor.render ?limit report))

(* ---- metrics-lint ---- *)

let metrics_lint_cmd path =
  handle_errors (fun () ->
      let text = if path = "-" then In_channel.input_all stdin else read_file path in
      match Metrics.lint text with
      | [] -> Printf.printf "%s: valid OpenMetrics exposition\n" path
      | errors ->
        List.iter (fun e -> Printf.eprintf "%s: %s\n" path e) errors;
        exit 1)

(* ---- lint ---- *)

module Diag = Cactis_analysis.Diag
module Analyze = Cactis_analysis.Analyze

(* Built-in application schemas, linted with `--apps` — these live in
   OCaml, not in .cactis files, so they are reconstructed here. *)
let app_schemas () =
  let module A = Cactis_apps in
  [
    ("app:milestone", Db.schema (A.Milestone.db (A.Milestone.create ())));
    ("app:configman", Db.schema (A.Configman.db (A.Configman.create ())));
    ("app:traceability", Db.schema (A.Traceability.db (A.Traceability.create ())));
    ("app:makefac", Db.schema (A.Makefac.db (A.Makefac.create (A.Fs_sim.create ()))));
    ("app:uidemo", Db.schema (A.Uidemo.db (A.Uidemo.create ())));
    ("app:flowan", A.Flowan.schema ());
  ]

let lint_cmd paths apps json strict fix dry_run =
  handle_errors (fun () ->
      let counters = Counters.create () in
      let lint_ast items =
        Cactis_ddl.Lint.typecheck_diags items @ Cactis_ddl.Lint.analyze_ast ~counters items
      in
      (* --fix: apply the machine-applicable fix directives to a
         fixpoint and re-emit through the pretty-printer; --dry-run
         prints the patched DDL instead of rewriting the file. *)
      let fix_file path =
        let items = Cactis_ddl.Parser.parse_schema (read_file path) in
        let items', applied = Cactis_ddl.Fix.run ~lint:lint_ast items in
        (match applied with
        | [] -> Printf.eprintf "%s: no applicable fixes\n" path
        | ds ->
          List.iter
            (fun d ->
              Printf.eprintf "%s: %s %s\n" path
                (if dry_run then "would apply" else "applied")
                (Cactis_ddl.Fix.directive_to_string d))
            ds);
        if applied <> [] then begin
          let out = Cactis_ddl.Pretty.schema_to_string items' in
          if dry_run then print_string out else write_file path out
        end
      in
      if fix then List.iter fix_file paths;
      if fix && dry_run then exit 0;
      let lint_file path =
        let items = Cactis_ddl.Parser.parse_schema (read_file path) in
        (path, List.stable_sort Diag.compare (lint_ast items))
      in
      let reports =
        List.map lint_file paths
        @
        if apps then
          List.map (fun (name, sch) -> (name, Analyze.analyze_schema ~counters sch)) (app_schemas ())
        else []
      in
      let failing d = Diag.is_error d || (strict && d.Diag.severity = Diag.Warning) in
      let any_failing = List.exists (fun (_, ds) -> List.exists failing ds) reports in
      if json then begin
        let file_json (name, ds) =
          Printf.sprintf "{\"file\":\"%s\",\"diagnostics\":%s}" (json_escape name)
            (Analyze.to_json ds)
        in
        Printf.printf "[%s]\n" (String.concat "," (List.map file_json reports))
      end
      else
        List.iter
          (fun (name, ds) ->
            match ds with
            | [] -> Printf.printf "%s: clean\n" name
            | ds ->
              Printf.printf "%s: %s\n" name (Diag.summary ds);
              List.iter (fun d -> Printf.printf "  %s\n" (Diag.to_string d)) ds)
          reports;
      if any_failing then exit 1)

(* ---- analyze ---- *)

module Cost = Cactis_analysis.Cost

let analyze_cmd path db_dir json =
  handle_errors (fun () ->
      let _, sch = load_schema path in
      let diags = List.stable_sort Diag.compare (Analyze.analyze_schema sch) in
      let finish cost hot =
        if json then
          Printf.printf "{\"file\":\"%s\",\"diagnostics\":%s,\"cost\":%s}\n" (json_escape path)
            (Analyze.to_json diags) (Cost.to_json cost)
        else begin
          (match Analyze.render diags with
          | "" -> Printf.printf "%s: no findings\n" path
          | r -> print_string r);
          print_string (Cost.render cost);
          match hot with
          | [] -> ()
          | hot ->
            print_endline "hot relationships (usage crossings):";
            List.iter (fun (rel, n) -> Printf.printf "  %-24s %6d\n" rel n) hot
        end
      in
      match db_dir with
      | None -> finish (Cost.analyze_schema sch) []
      | Some dir ->
        (* A live database sharpens fan-out bounds to measured values and
           prices I/O from the links' decaying-average tags. *)
        let p = Persist.recover ~dir sch in
        let db = Persist.db p in
        let cost = Cost.analyze_schema ~db sch in
        let hot = Cactis_storage.Usage.rel_totals (Cactis.Store.usage (Db.store db)) in
        Persist.close p;
        finish cost hot)

(* ---- demo ---- *)

let demo_cmd which =
  handle_errors (fun () ->
      match which with
      | "milestones" ->
        let module M = Cactis_apps.Milestone in
        let m = M.create () in
        let a = M.add m ~name:"design" ~scheduled:10.0 ~local_work:5.0 in
        let b = M.add m ~name:"build" ~scheduled:30.0 ~local_work:12.0 in
        M.depends_on m b a;
        print_string (M.report m);
        print_endline "-- design slips 20 days --";
        M.slip m a 20.0;
        print_string (M.report m)
      | "make" ->
        let module Fs = Cactis_apps.Fs_sim in
        let module Mk = Cactis_apps.Makefac in
        let fs = Fs.create () in
        Fs.write_file fs "main.c" "int main(){}";
        let mk = Mk.create fs in
        let src = Mk.add_rule mk ~file:"main.c" ~command:"" in
        let exe = Mk.add_rule mk ~file:"main" ~command:"cc main.c -o main" in
        Mk.add_dependency mk ~rule:exe ~on:src;
        List.iter print_endline (Mk.build mk exe);
        print_endline "-- rebuild (current) --";
        (match Mk.build mk exe with
        | [] -> print_endline "(nothing to do)"
        | cmds -> List.iter print_endline cmds)
      | "flow" ->
        let module F = Cactis_apps.Flowan in
        let p =
          F.Seq
            ( F.Assign { target = "x"; uses = [ "input" ]; label = "X" },
              F.Assign { target = "y"; uses = [ "x" ]; label = "Y" } )
        in
        let t = F.analyze ~exit_live:[ "y" ] p in
        List.iter
          (fun n ->
            Printf.printf "%-5s live_in={%s}\n" (F.label t n) (String.concat "," (F.live_in t n)))
          (F.nodes t)
      | other ->
        Printf.eprintf "unknown demo %s (milestones|make|flow)\n" other;
        exit 1)

(* ---- cmdliner wiring ---- *)

open Cmdliner

let schema_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"Schema (.cactis) file.")

let check_t =
  let doc = "Parse, type-check and elaborate a schema file, reporting its classes." in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the full elaborated schema.")
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(const check_cmd $ schema_arg $ verbose)

let fmt_t =
  let doc = "Pretty-print a schema file." in
  Cmd.v (Cmd.info "fmt" ~doc) Term.(const fmt_cmd $ schema_arg)

let run_t =
  let doc = "Load a schema and execute a script of database primitives." in
  let script_arg =
    Arg.(required & pos 1 (some file) None & info [] ~docv:"SCRIPT" ~doc:"Script file.")
  in
  let snapshot_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:"Load a data snapshot (text or binary, auto-detected) before running the script.")
  in
  let persist_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "persist" ] ~docv:"DIR"
          ~doc:
            "Run against a durable persistence directory: recover from its checkpoint and \
             write-ahead log, then log every commit the script makes.")
  in
  let save_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "save" ] ~docv:"FILE" ~doc:"Write a snapshot of the final state to $(docv).")
  in
  let save_text_arg =
    Arg.(
      value & flag
      & info [ "text" ] ~doc:"With $(b,--save), use the textual snapshot format (default binary).")
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_cmd $ schema_arg $ script_arg $ snapshot_arg $ persist_arg $ save_arg
      $ save_text_arg)

let save_t =
  let doc = "Re-encode a data snapshot (text to binary or back)." in
  let snapshot_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"SNAPSHOT" ~doc:"Snapshot file (text or binary, auto-detected).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Output file (stdout when omitted).")
  in
  let text_arg =
    Arg.(value & flag & info [ "text" ] ~doc:"Emit the textual format (default binary).")
  in
  Cmd.v (Cmd.info "save" ~doc) Term.(const save_cmd $ schema_arg $ snapshot_arg $ out_arg $ text_arg)

let recover_t =
  let doc =
    "Recover a database from a persistence directory (checkpoint + write-ahead log), \
     discarding any torn log tail."
  in
  let dir_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR" ~doc:"Persistence directory.")
  in
  let script_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE" ~doc:"Run a script against the recovered database.")
  in
  let checkpoint_arg =
    Arg.(
      value & flag
      & info [ "checkpoint" ] ~doc:"Write a fresh checkpoint (and truncate the log) at the end.")
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(const recover_cmd $ schema_arg $ dir_arg $ script_arg $ checkpoint_arg)

let log_t =
  let doc =
    "Show the committed version history of a persistence directory: one line per version with \
     its delta size and label, schema steps (type/attribute/subtype declarations) spelled out."
  in
  let dir_arg =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"DIR" ~doc:"Persistence directory.")
  in
  let ops_arg =
    Arg.(value & flag & info [ "ops" ] ~doc:"Spell out every op of every delta, not just schema steps.")
  in
  Cmd.v (Cmd.info "log" ~doc) Term.(const log_cmd $ schema_arg $ dir_arg $ ops_arg)

let script_pos_arg =
  Arg.(required & pos 1 (some file) None & info [] ~docv:"SCRIPT" ~doc:"Script file.")

let persist_opt_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "persist" ] ~docv:"DIR"
        ~doc:
          "Run against a durable persistence directory (recover first), so WAL appends, fsyncs \
           and checkpoints show up in the instrumentation.")

let show_output_arg =
  Arg.(value & flag & info [ "show-output" ] ~doc:"Also print the script's own output.")

let stats_t =
  let doc =
    "Execute a script with per-commit propagation profiling armed, then report event counters, \
     latency histograms (p50/p95/p99/max) and the last commit's propagation profile — including \
     whether the evaluated-at-most-once invariant held.  With $(b,--connect), report a running \
     $(b,cactis serve) instance's counters and per-verb service latencies instead (add \
     $(b,--watch) for a live view)."
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead of tables.")
  in
  let connect_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "connect" ] ~docv:"PORT"
          ~doc:"Query a running server on 127.0.0.1:$(docv) instead of executing a script.")
  in
  let watch_arg =
    Arg.(
      value & flag
      & info [ "watch" ]
          ~doc:
            "With $(b,--connect): refresh the tables in place until interrupted, reconnecting \
             with backoff if the server goes away.")
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"SECS"
          ~doc:"With $(b,--watch): seconds between refreshes (default 1).")
  in
  let schema_opt_arg =
    Arg.(value & pos 0 (some file) None & info [] ~docv:"SCHEMA" ~doc:"Schema (.cactis) file.")
  in
  let script_opt_arg =
    Arg.(value & pos 1 (some file) None & info [] ~docv:"SCRIPT" ~doc:"Script file.")
  in
  Cmd.v (Cmd.info "stats" ~doc)
    Term.(
      const stats_cmd $ connect_arg $ watch_arg $ interval_arg $ schema_opt_arg $ script_opt_arg
      $ persist_opt_arg $ json_arg $ show_output_arg)

let serve_t =
  let doc =
    "Serve the database to TCP clients: one writer domain applies commits (through the \
     write-ahead log when $(b,--persist) is given), N reader domains answer reads and \
     traversals over immutable snapshot replicas kept current by per-commit delta broadcast.  \
     Listens on loopback; stop with Ctrl-C."
  in
  let script_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "script" ] ~docv:"FILE" ~doc:"Populate the database with a script before serving.")
  in
  let port_arg =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT" ~doc:"TCP port (default 0: pick an ephemeral port).")
  in
  let readers_arg =
    Arg.(
      value & opt int 2
      & info [ "readers" ] ~docv:"N" ~doc:"Reader domains serving snapshot reads (default 2).")
  in
  let sample_arg =
    Arg.(
      value & opt int 64
      & info [ "trace-sample" ] ~docv:"N" ~doc:"Record a span for one commit in $(docv) (default 64).")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Also answer plain-HTTP $(b,GET /metrics) (OpenMetrics text) on loopback at $(docv) \
             (0: ephemeral, printed at startup).")
  in
  let slow_ms_arg =
    Arg.(
      value & opt float 100.0
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-op deadline: ops slower than $(docv) milliseconds are logged as one JSON line \
             each to stderr (0 disables; default 100).")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "watchdog" ] ~docv:"SECS"
          ~doc:
            "Enable the latency/error watchdog, sampling per-verb latency windows every $(docv) \
             seconds; a p99 regression or error burst dumps the flight recorder.")
  in
  let flight_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:
            "Write flight-recorder dumps (domain crash, watchdog trip, SIGQUIT/SIGUSR2) to \
             $(docv); analyze them with $(b,cactis doctor).")
  in
  let repl_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "repl-port" ] ~docv:"PORT"
          ~doc:
            "Ship the write-ahead log to follower replicas on loopback at $(docv) (0: \
             ephemeral, printed at startup).  Requires $(b,--persist).")
  in
  let follow_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "follow" ] ~docv:"HOST:PORT"
          ~doc:
            "Run as a read-only replica of the writer shipping its WAL at $(docv): bootstrap \
             from its snapshot, stream its log, refuse client commits.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const serve_cmd $ schema_arg $ script_arg $ port_arg $ readers_arg $ sample_arg
      $ persist_opt_arg $ metrics_port_arg $ slow_ms_arg $ watchdog_arg $ flight_dir_arg
      $ repl_port_arg $ follow_arg)

let replicate_cmd schema_path from until_synced check_every lag_every =
  handle_errors (fun () ->
      let src = read_file schema_path in
      let make_schema () = Cactis_ddl.Elaborate.load_string src in
      let host, port = parse_hostport from in
      let f =
        Follower.create ~config:(Follower.config ~check_every ()) ~make_schema ~host ~port ()
      in
      let handler = Sys.Signal_handle (fun _ -> Follower.stop f) in
      Sys.set_signal Sys.sigint handler;
      Sys.set_signal Sys.sigterm handler;
      Printf.printf "cactis: replicating from %s:%d%s\n%!" host port
        (if until_synced then " (until synced)" else "");
      (* A progress line every [lag_every] seconds, from a domain of its
         own so the streaming thread never waits on stdout. *)
      let progress_stop = Atomic.make false in
      let progress =
        if lag_every <= 0.0 then None
        else
          Some
            (Domain.spawn (fun () ->
                 while not (Atomic.get progress_stop) do
                   Unix.sleepf lag_every;
                   if not (Atomic.get progress_stop) then
                     Printf.printf "cactis: replica %s applied_seq=%d head_seq=%d lag=%d\n%!"
                       (Repl_proto.cursor_to_string (Follower.cursor f))
                       (Follower.applied_seq f) (Follower.head_seq f)
                       (max 0 (Follower.head_seq f - Follower.applied_seq f))
                 done))
      in
      let finish () =
        Atomic.set progress_stop true;
        match progress with Some d -> Domain.join d | None -> ()
      in
      (try Follower.run ~until_synced f
       with e ->
         finish ();
         Printf.eprintf "cactis: replication failed: %s\n" (Repl_error.to_string e);
         exit 1);
      finish ();
      match Follower.db f with
      | None ->
        Printf.eprintf "cactis: stopped before any data arrived\n";
        exit 1
      | Some db ->
        let violations = Cactis.Integrity.check db in
        Printf.printf
          "cactis: replica %s applied_seq=%d head_seq=%d synced=%b integrity=%s instances=%d\n"
          (Repl_proto.cursor_to_string (Follower.cursor f))
          (Follower.applied_seq f) (Follower.head_seq f) (Follower.synced f)
          (if violations = [] then "clean" else "VIOLATED")
          (List.length (Db.instance_ids db));
        List.iter
          (fun (n, v) ->
            if String.length n >= 5 && String.sub n 0 5 = "repl." then
              Printf.printf "  %-28s %d\n" n v)
          (Counters.snapshot (Db.counters db));
        if violations <> [] then begin
          List.iter (fun v -> Printf.eprintf "  violation: %s\n" v) violations;
          exit 1
        end)

let replicate_t =
  let doc =
    "Maintain a live read-only replica of a $(b,cactis serve --repl-port) writer: bootstrap \
     from its checkpoint snapshot, stream its write-ahead log, verify integrity, report lag.  \
     With $(b,--until-synced), exit once the replica has caught up (CI smoke tests build on \
     this)."
  in
  let from_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "from" ] ~docv:"HOST:PORT" ~doc:"The writer's replication endpoint.")
  in
  let until_synced_arg =
    Arg.(
      value & flag
      & info [ "until-synced" ]
          ~doc:"Exit (successfully) as soon as the replica has applied the writer's head.")
  in
  let check_every_arg =
    Arg.(
      value & opt int 8
      & info [ "check-every" ] ~docv:"N"
          ~doc:
            "Run the structural integrity checker every $(docv) applied batches — the drift \
             detector (0 disables; default 8).")
  in
  let lag_every_arg =
    Arg.(
      value & opt float 0.0
      & info [ "lag-every" ] ~docv:"SECS"
          ~doc:"Print a lag progress line every $(docv) seconds (0 disables).")
  in
  Cmd.v (Cmd.info "replicate" ~doc)
    Term.(
      const replicate_cmd $ schema_arg $ from_arg $ until_synced_arg $ check_every_arg
      $ lag_every_arg)

let trace_t =
  let doc =
    "Execute a script with the span tracer enabled and export the events as Chrome trace-event \
     JSON, loadable in Perfetto or chrome://tracing."
  in
  let out_arg =
    Arg.(
      value
      & opt string "trace.json"
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Trace output file (default trace.json).")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const trace_cmd $ schema_arg $ script_pos_arg $ persist_opt_arg $ out_arg $ show_output_arg)

let lint_t =
  let doc =
    "Statically analyze schema files without instantiating any objects: the attribute-grammar \
     circularity test (with a concrete witness cycle for every strongly connected component), \
     dead derived attributes, dangling references and constraint lint.  Exits non-zero when any \
     error-severity finding is reported."
  in
  let schemas_arg =
    Arg.(value & pos_all file [] & info [] ~docv:"SCHEMA" ~doc:"Schema (.cactis) files to lint.")
  in
  let apps_arg =
    Arg.(
      value & flag
      & info [ "apps" ] ~doc:"Also lint the built-in application schemas (milestone, flowan, …).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON array instead of text.")
  in
  let strict_arg =
    Arg.(value & flag & info [ "strict" ] ~doc:"Treat warnings as failing too (infos never fail).")
  in
  let fix_arg =
    Arg.(
      value & flag
      & info [ "fix" ]
          ~doc:
            "Apply machine-applicable fixes (dead rules dropped, dangling transmission targets \
             declared) and rewrite the schema files in place, then lint the result.")
  in
  let dry_run_arg =
    Arg.(
      value & flag
      & info [ "dry-run" ]
          ~doc:"With $(b,--fix): print the patched DDL to stdout instead of rewriting files.")
  in
  Cmd.v (Cmd.info "lint" ~doc)
    Term.(const lint_cmd $ schemas_arg $ apps_arg $ json_arg $ strict_arg $ fix_arg $ dry_run_arg)

let analyze_t =
  let doc =
    "Abstract interpretation over the compiled rules and the dependency graph: per-attribute \
     evaluation-cost intervals (rule operation counts, transmit fan-out bounds, expected I/O \
     when a live database is attached with $(b,--db)) and a convergence verdict for every \
     potential cycle — the cost-model substrate for the query planner.  $(b,--json) emits a \
     stable document suitable for golden-file comparison."
  in
  let db_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "db" ] ~docv:"DIR"
          ~doc:"Persistence directory: sharpen static bounds with measured fan-outs and I/O tags.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit one JSON object instead of text.")
  in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze_cmd $ schema_arg $ db_arg $ json_arg)

let doctor_t =
  let doc =
    "Post-mortem analysis of a flight-recorder dump: merged per-domain event timeline, last \
     durable version against the last commit the process attempted (correlated with the WAL \
     when $(b,--dir) names the persistence directory), and what each domain had in flight."
  in
  let dump_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"DUMP" ~doc:"Flight dump (.cfr) written by the server or a signal.")
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Persistence directory whose WAL tail to correlate with the dump.")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the verdict as one JSON object.")
  in
  let limit_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "limit" ] ~docv:"N" ~doc:"Show only the newest $(docv) timeline lines.")
  in
  Cmd.v (Cmd.info "doctor" ~doc)
    Term.(const doctor_cmd $ dump_arg $ dir_arg $ json_arg $ limit_arg)

let metrics_lint_t =
  let doc =
    "Validate an OpenMetrics text exposition (e.g. a file captured from $(b,GET /metrics)): \
     structure, type/suffix agreement, family contiguity, cumulative histogram buckets.  Exits \
     non-zero on any violation.  Reads stdin when FILE is $(b,-)."
  in
  let file_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Exposition file ($(b,-) for stdin).")
  in
  Cmd.v (Cmd.info "metrics-lint" ~doc) Term.(const metrics_lint_cmd $ file_arg)

let demo_t =
  let doc = "Run a built-in demo (milestones, make, flow)." in
  let which = Arg.(required & pos 0 (some string) None & info [] ~docv:"DEMO" ~doc) in
  Cmd.v (Cmd.info "demo" ~doc) Term.(const demo_cmd $ which)

let repl_t =
  let doc = "Interactive session against a schema (optionally over a snapshot)." in
  let snapshot_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "snapshot" ] ~docv:"FILE" ~doc:"Load a data snapshot before starting.")
  in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const repl_cmd $ schema_arg $ snapshot_arg)

let main =
  let doc = "Cactis: object-oriented database with functionally-defined data" in
  Cmd.group
    (Cmd.info "cactis" ~version:"1.0.0" ~doc)
    [
      check_t; fmt_t; lint_t; analyze_t; run_t; repl_t; serve_t; replicate_t; stats_t; trace_t;
      save_t; recover_t; log_t; doctor_t; metrics_lint_t; demo_t;
    ]

let () =
  (* Register the analyzer as the schema validator, so Schema.validate /
     strict mode work for everything the CLI loads. *)
  Cactis_analysis.Analyze.install ();
  exit (Cmd.eval main)
