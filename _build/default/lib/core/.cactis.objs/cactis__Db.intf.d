lib/core/db.mli: Cactis_util Engine Sched Schema Store Value
