let placeholder () = ()
