module Schema = Cactis.Schema
module Counters = Cactis_util.Counters

(* ------------------------------------------------------------------ *)
(* Circularity                                                         *)

(* Severity classes for one witness cycle, most severe first. *)
type cycle_class =
  | Cycle_self  (* no relationship step: cycles within every instance *)
  | Cycle_link  (* rel word reduces to empty: cycles on acyclic data *)
  | Cycle_data of string list  (* needs a data cycle along these rels *)

let class_rank = function Cycle_self -> 0 | Cycle_link -> 1 | Cycle_data _ -> 2

(* A relationship step at a node of type [tn] via [r], canonicalized so
   that both directions of one relationship pair share a key; [sign]
   distinguishes the directions. *)
let rel_step_key v tn r =
  match View.find_type v tn with
  | None -> ((tn, r, "", ""), 1)
  | Some t -> (
    match View.find_rel t r with
    | None -> ((tn, r, "", ""), 1)
    | Some rd ->
      let this = (tn, r) and that = (rd.View.r_target, rd.View.r_inverse) in
      if compare this that <= 0 then ((tn, r, rd.View.r_target, rd.View.r_inverse), 1)
      else ((rd.View.r_target, rd.View.r_inverse, tn, r), -1))

(* Free-group reduction of the cycle's relationship word: a step across
   r cancels an adjacent step back across r's inverse (they can retrace
   the same link), so a cycle whose word vanishes is realizable on
   tree-shaped — acyclic — data. *)
let classify_cycle v (cycle : (Diag.node * Diag.step) list) =
  let rel_steps =
    List.filter_map
      (fun ((n : Diag.node), step) ->
        match step with
        | Diag.S_self -> None
        | Diag.S_rel r -> Some (r, rel_step_key v n.Diag.n_type r))
      cycle
  in
  if rel_steps = [] then Cycle_self
  else begin
    let reduce stack (_, (key, sign)) =
      match stack with
      | (k, s) :: rest when k = key && s = -sign -> rest
      | _ -> (key, sign) :: stack
    in
    (* The word is cyclic: reduce it twice so cancellations across the
       wrap-around point are found too. *)
    let once = List.fold_left reduce [] rel_steps in
    let twice = List.fold_left reduce once rel_steps in
    if once = [] || 2 * List.length once = List.length twice then
      if once = [] then Cycle_link
      else
        Cycle_data
          (List.map fst rel_steps |> List.sort_uniq String.compare)
    else
      (* The second pass cancelled against the first: the doubled word
         shrank, meaning the cyclic word reduces further; treat a fully
         vanishing doubled word as link-realizable. *)
      if twice = [] then Cycle_link
      else Cycle_data (List.map fst rel_steps |> List.sort_uniq String.compare)
  end

(* Shortest path v -> u inside the SCC (BFS); returns the (node, step)
   sequence realizing it, or None. *)
let scc_path g in_scc v u =
  let n = Depgraph.node_count g in
  let prev = Array.make n None in
  let seen = Array.make n false in
  let q = Queue.create () in
  seen.(v) <- true;
  Queue.add v q;
  let found = ref (v = u) in
  while (not !found) && not (Queue.is_empty q) do
    let x = Queue.take q in
    List.iter
      (fun (y, step) ->
        if in_scc.(y) && not seen.(y) then begin
          seen.(y) <- true;
          prev.(y) <- Some (x, step);
          if y = u then found := true;
          Queue.add y q
        end)
      (Depgraph.adj g x)
  done;
  if not seen.(u) then None
  else begin
    (* Walk back u -> v collecting (from, step) pairs. *)
    let rec back acc node =
      match prev.(node) with
      | None -> acc
      | Some (from, step) -> back ((Depgraph.node g from, step) :: acc) from
    in
    Some (back [] u)
  end

let rotate_cycle cycle =
  let least =
    List.mapi (fun i ((n : Diag.node), _) -> ((n.Diag.n_type, n.Diag.n_attr), i)) cycle
    |> List.sort compare |> List.hd |> snd
  in
  let rec split i acc = function
    | [] -> (List.rev acc, [])
    | l when i = 0 -> (List.rev acc, l)
    | x :: rest -> split (i - 1) (x :: acc) rest
  in
  let before, after = split least [] cycle in
  after @ before

let circularity ?(only = fun _ -> true) v g =
  Depgraph.cyclic_sccs g |> List.filter only
  |> List.map (fun comp ->
         let in_scc = Array.make (Depgraph.node_count g) false in
         List.iter (fun i -> in_scc.(i) <- true) comp;
         (* Candidate cycles: every SCC edge closed by a shortest return
            path.  Keep the most severe class (shortest, then lexico-
            graphically first, on ties) — a mixed SCC may hide a
            link-realizable cycle behind a longer data-conditional one. *)
         let best = ref None in
         List.iter
           (fun u ->
             List.iter
               (fun (w, step) ->
                 if in_scc.(w) then
                   match scc_path g in_scc w u with
                   | None -> ()
                   | Some path ->
                     let cycle = rotate_cycle ((Depgraph.node g u, step) :: path) in
                     let cls = classify_cycle v cycle in
                     let key =
                       (class_rank cls, List.length cycle, Diag.witness_to_string cycle)
                     in
                     let better =
                       match !best with None -> true | Some (k, _, _) -> key < k
                     in
                     if better then best := Some (key, cls, cycle))
               (Depgraph.adj g u))
           comp;
         let _, cls, cycle = Option.get !best in
         let anchor = fst (List.hd cycle) in
         let path = anchor.Diag.n_type ^ "." ^ anchor.Diag.n_attr in
         match cls with
         | Cycle_self ->
           Diag.make Diag.Error ~code:"cycle" ~path ~witness:cycle
             ~hint:"break the rule cycle: no evaluation order exists for these attributes"
             (Printf.sprintf
                "unconditionally circular: the dependency cycle stays within one instance, so \
                 every instance of %s cycles"
                anchor.Diag.n_type)
         | Cycle_link ->
           Diag.make Diag.Error ~code:"cycle" ~path ~witness:cycle
             ~hint:
               "the cycle crosses a relationship and its inverse, which can retrace one link; \
                break the rule cycle or transmit in one direction only"
             "circular on acyclic data: a single link is enough to realize this dependency cycle"
         | Cycle_data rels -> (
           (* A data-conditional cycle may still be fine: if every rule
              on the SCC is monotone over a bounded lattice ([Far86]),
              fixed-point iteration provably terminates and the engine
              can run cyclic data under [Db.set_fixed_point]. *)
           match Fixpoint.classify v g comp with
           | Fixpoint.Convergent { shapes; coeff } ->
             Diag.make Diag.Info ~code:"convergent-cycle" ~path ~witness:cycle
               ~hint:
                 (Printf.sprintf
                    "cyclic data along %s is safe under Db.set_fixed_point; without it the \
                     engine still raises Errors.Cycle"
                    (String.concat ", " rels))
               (Printf.sprintf
                  "provably convergent cycle: every rule is monotone over a bounded lattice \
                   (%s); fixed-point iteration needs at most %d sweep(s) per participating \
                   slot"
                  (Fixpoint.shapes_summary shapes) coeff)
           | Fixpoint.Divergent { culprit; why } ->
             Diag.make Diag.Warning ~code:"potential-cycle" ~path ~witness:cycle
               ~hint:
                 (Printf.sprintf
                    "keep the data acyclic along %s (the engine raises Errors.Cycle and rolls \
                     the transaction back otherwise)"
                    (String.concat ", " rels))
               (Printf.sprintf
                  "potentially circular: evaluation cycles whenever the data graph has a cycle \
                   along %s; not provably convergent — %s.%s %s"
                  (String.concat ", " rels) culprit.Diag.n_type culprit.Diag.n_attr why)))

(* ------------------------------------------------------------------ *)
(* Dead derived attributes                                             *)

let dead_attrs (v : View.t) g =
  let read = Depgraph.read_nodes g in
  v.View.v_types
  |> List.concat_map (fun (t : View.vtype) ->
         let exported = View.exported_attrs t in
         t.View.t_attrs
         |> List.filter_map (fun (a : View.attr) ->
                let is_read =
                  match Depgraph.find g t.View.t_name a.View.a_name with
                  | Some i -> read.(i)
                  | None -> false
                in
                if
                  a.View.a_intrinsic || a.View.a_constrained
                  || View.is_membership a.View.a_name
                  || List.mem a.View.a_name exported
                  || is_read
                then None
                else
                  Some
                    (Diag.make Diag.Info ~code:"dead-attr"
                       ~path:(t.View.t_name ^ "." ^ a.View.a_name)
                       ~hint:
                         (Printf.sprintf
                            "if no application queries %s.%s, delete the rule; otherwise ignore"
                            t.View.t_name a.View.a_name)
                       ~fix:(Printf.sprintf "drop-rule:%s.%s" t.View.t_name a.View.a_name)
                       "derived attribute is never read by a rule or predicate, never \
                        transmitted, and carries no constraint — nothing in the schema depends \
                        on it")))

(* ------------------------------------------------------------------ *)
(* Dangling references                                                 *)

let dangling (v : View.t) =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  List.iter
    (fun (t : View.vtype) ->
      let tn = t.View.t_name in
      (* Rule sources. *)
      List.iter
        (fun (a : View.attr) ->
          let path = tn ^ "." ^ a.View.a_name in
          let who = View.attr_display a.View.a_name in
          List.iter
            (fun src ->
              match src with
              | Schema.Self b ->
                if View.find_attr t b = None then
                  emit
                    (Diag.make Diag.Error ~code:"dangling-attr" ~path
                       ~hint:(Printf.sprintf "declare %s.%s or fix the reference" tn b)
                       (Printf.sprintf "%s reads undeclared attribute %s.%s" who tn b))
              | Schema.Rel (r, name) -> (
                match View.find_rel t r with
                | None ->
                  emit
                    (Diag.make Diag.Error ~code:"dangling-rel" ~path
                       ~hint:(Printf.sprintf "declare relationship %s.%s" tn r)
                       (Printf.sprintf "%s reads across undeclared relationship %s.%s" who tn r))
                | Some rd -> (
                  match View.find_type v rd.View.r_target with
                  | None -> ()  (* reported once, against the relationship *)
                  | Some target ->
                    let resolved =
                      View.resolve_export v ~target:rd.View.r_target ~inverse:rd.View.r_inverse
                        name
                    in
                    if View.find_attr target resolved = None then
                      emit
                        (Diag.make Diag.Warning ~code:"dangling-transmission" ~path
                           ~hint:
                             (Printf.sprintf
                                "declare %s.%s (or a transmission alias for it); the engine \
                                 reports the missing attribute only when a link over %s is \
                                 traversed"
                                rd.View.r_target resolved r)
                           ~fix:
                             (Printf.sprintf "declare-attr:%s.%s:int" rd.View.r_target resolved)
                           (Printf.sprintf
                              "%s reads %s across %s, but %s declares no attribute %s" who name r
                              rd.View.r_target resolved)))))
            a.View.a_sources)
        t.View.t_attrs;
      (* Relationship wiring. *)
      List.iter
        (fun (r : View.rel) ->
          let path = tn ^ "." ^ r.View.r_name in
          match View.find_type v r.View.r_target with
          | None ->
            emit
              (Diag.make Diag.Error ~code:"dangling-target" ~path
                 ~hint:(Printf.sprintf "declare class %s" r.View.r_target)
                 (Printf.sprintf "relationship targets undeclared class %s" r.View.r_target))
          | Some target -> (
            match View.find_rel target r.View.r_inverse with
            | None ->
              emit
                (Diag.make Diag.Error ~code:"dangling-inverse" ~path
                   ~hint:(Printf.sprintf "declare %s.%s" r.View.r_target r.View.r_inverse)
                   (Printf.sprintf "inverse %s.%s is not declared" r.View.r_target r.View.r_inverse))
            | Some inv ->
              if not (String.equal inv.View.r_inverse r.View.r_name) then
                emit
                  (Diag.make Diag.Error ~code:"inverse-mismatch" ~path
                     ~hint:"the two ends of a relationship must name each other as inverses"
                     (Printf.sprintf "%s.%s names %s as its inverse, not %s" r.View.r_target
                        r.View.r_inverse inv.View.r_inverse r.View.r_name))
              else if not (String.equal inv.View.r_target tn) then
                emit
                  (Diag.make Diag.Error ~code:"inverse-mismatch" ~path
                     ~hint:"the two ends of a relationship must target each other's classes"
                     (Printf.sprintf "inverse %s.%s targets %s, not %s" r.View.r_target
                        r.View.r_inverse inv.View.r_target tn))))
        t.View.t_rels;
      (* Transmission aliases. *)
      List.iter
        (fun ((r, export), a) ->
          let path = tn ^ "." ^ export in
          if View.find_rel t r = None then
            emit
              (Diag.make Diag.Error ~code:"dangling-export" ~path
                 ~hint:(Printf.sprintf "declare relationship %s.%s" tn r)
                 (Printf.sprintf "transmission %s = %s crosses undeclared relationship %s" export
                    a r));
          if View.find_attr t a = None then
            emit
              (Diag.make Diag.Error ~code:"dangling-export" ~path
                 ~hint:(Printf.sprintf "declare %s.%s" tn a)
                 (Printf.sprintf "transmission %s names undeclared attribute %s.%s" export tn a)))
        t.View.t_exports)
    v.View.v_types;
  List.iter
    (fun (s, parent) ->
      if View.find_type v parent = None then
        emit
          (Diag.make Diag.Error ~code:"dangling-parent" ~path:s
             ~hint:(Printf.sprintf "declare class %s" parent)
             (Printf.sprintf "subtype %s refines undeclared class %s" s parent)))
    v.View.v_subtypes;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Constraint lint                                                     *)

let constraint_lint (v : View.t) g =
  v.View.v_types
  |> List.concat_map (fun (t : View.vtype) ->
         t.View.t_attrs
         |> List.filter_map (fun (a : View.attr) ->
                if not a.View.a_constrained then None
                else
                  match Depgraph.find g t.View.t_name a.View.a_name with
                  | None -> None
                  | Some i ->
                    let cone, via_rel = Depgraph.reachable g i in
                    let has_intrinsic = ref false in
                    Array.iteri
                      (fun j in_cone ->
                        if in_cone then
                          let n = Depgraph.node g j in
                          match View.find_type v n.Diag.n_type with
                          | None -> ()
                          | Some vt -> (
                            match View.find_attr vt n.Diag.n_attr with
                            | Some d when d.View.a_intrinsic -> has_intrinsic := true
                            | _ -> ()))
                      cone;
                    let path = t.View.t_name ^ "." ^ a.View.a_name in
                    if !has_intrinsic then None
                    else if not via_rel then
                      Some
                        (Diag.make Diag.Warning ~code:"constraint-constant" ~path
                           ~hint:
                             "a constraint that is always true is dead weight; one that is \
                              always false makes every instance creation fail — reference an \
                              intrinsic attribute"
                           "vacuously constant: the constraint's input cone contains no \
                            intrinsic attribute and never crosses a relationship, so its value \
                            is fixed at schema-definition time")
                    else
                      Some
                        (Diag.make Diag.Info ~code:"constraint-topology-only" ~path
                           ~hint:"reference an intrinsic attribute if values should matter"
                           "no intrinsic attribute in the input cone: the constraint depends \
                            only on the link structure, never on stored values")))

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let analyze_view ?counters v =
  let g = Depgraph.build v in
  let diags =
    circularity v g @ dead_attrs v g @ dangling v @ constraint_lint v g
    |> List.stable_sort Diag.compare
  in
  (match counters with
  | None -> ()
  | Some c ->
    Counters.incr c "analysis_runs";
    Counters.add c "analysis_nodes" (Depgraph.node_count g);
    Counters.add c "analysis_edges" (Depgraph.edge_count g);
    Counters.add c "analysis_sccs" (List.length (Depgraph.cyclic_sccs g));
    Counters.add c "analysis_diags" (List.length diags));
  diags

let analyze_schema ?counters sch = analyze_view ?counters (View.of_schema sch)

let render diags =
  match diags with
  | [] -> ""
  | _ ->
    String.concat "\n" (List.map Diag.to_string diags) ^ "\n" ^ Diag.summary diags ^ "\n"

let to_json diags = "[" ^ String.concat "," (List.map Diag.to_json diags) ^ "]"

(* Re-validation restricted to the SCCs reachable from attributes added
   since the last clean validation.  Sound because [Schema.add_attr] is
   the only mutation that preserves the touched set, and it can only
   introduce new {e errors} of the circularity class (unknown self/rel
   sources are rejected eagerly by the schema itself; missing
   transmitted attributes are warning-severity): every edge a new
   attribute adds — its own reads, and previously-dangling reads of it
   by older rules — has that attribute as an endpoint, so any new cycle
   runs through a touched node's SCC. *)
let incremental_errors ?counters sch touched =
  let v = View.of_schema sch in
  let g = Depgraph.build v in
  let touches comp =
    List.exists
      (fun i ->
        let n = Depgraph.node g i in
        List.exists
          (fun (tn, a) ->
            String.equal tn n.Diag.n_type && String.equal a n.Diag.n_attr)
          touched)
      comp
  in
  (match counters with
  | None -> ()
  | Some c -> Counters.incr c "analysis_incremental_runs");
  Diag.errors (circularity ~only:touches v g)

let install ?counters () =
  Schema.set_validator (fun sch ->
      let errs =
        match Schema.touched_since_validation sch with
        | Some [] ->
          (match counters with
          | None -> ()
          | Some c -> Counters.incr c "analysis_validation_skips");
          []
        | Some touched -> incremental_errors ?counters sch touched
        | None -> Diag.errors (analyze_schema ?counters sch)
      in
      List.map Diag.to_string errs)
