(** Chunk scheduler for graph traversals (§2.3).

    The paper breaks the mark-out-of-date and evaluation traversals into
    {e chunks} scheduled as simulated concurrent processes, and chooses
    the next chunk to run so as to minimize disk access:

    - every pending process is associated with one instance;
    - processes whose instance's block is resident go on a very
      high-priority queue and always run first;
    - whenever a block is read into memory, all pending processes
      associated with instances on that block are promoted to the
      high-priority queue;
    - otherwise the runnable process with the lowest {e expected} disk
      I/O runs first (decaying-average relationship tags; worst-case
      statistics for marking).

    [Fifo] is the naive fixed-order baseline the experiments compare
    against. *)

type strategy =
  | Fifo
  | Cost_only
      (** ablation: order by expected cost but without the resident-first
          queue or block promotion *)
  | Greedy

type 'a t

(** [create strategy store] builds an empty scheduler consulting [store]
    for residency and block placement. *)
val create : strategy -> Store.t -> 'a t

(** [schedule t ~instance ~cost payload] enqueues a chunk associated with
    [instance]; [cost] is its expected disk I/O if the instance is not
    resident (ignored under [Fifo]). *)
val schedule : 'a t -> instance:int -> cost:float -> 'a -> unit

(** [next t] pops the chunk to run, or [None] when drained.  Under
    [Greedy], popping a chunk for a non-resident instance promotes the
    other pending chunks that live on the same block (they will be free
    once the caller touches the instance and loads the block). *)
val next : 'a t -> 'a option

val pending : 'a t -> int
val is_empty : 'a t -> bool
