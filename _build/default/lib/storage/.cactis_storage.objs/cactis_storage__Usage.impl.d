lib/storage/usage.ml: Hashtbl List
