(* Static type checker tests: inference through fixpoints (including
   recursive rules across relationships), and rejection of ill-typed
   schemas. *)

module Parser = Cactis_ddl.Parser
module Tc = Cactis_ddl.Typecheck

let check_src src = Tc.check (Parser.parse_schema src)

let infer_src src ~class_name ~attr = Tc.infer (Parser.parse_schema src) ~class_name ~attr

let ty = Alcotest.testable (fun fmt t -> Format.pp_print_string fmt (Tc.ty_name t)) ( = )

let contains_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let ill_typed name ~expecting src =
  Alcotest.test_case name `Quick (fun () ->
      match check_src src with
      | [] -> Alcotest.fail "expected type errors"
      | errors ->
        Alcotest.(check bool)
          (Printf.sprintf "mentions %S (got: %s)" expecting (String.concat "; " errors))
          true
          (List.exists (contains_sub ~sub:expecting) errors))

let milestone_src =
  {|
  object class milestone is
    relationships
      depends_on  : milestone multi socket inverse consists_of;
      consists_of : milestone multi plug   inverse depends_on;
    attributes
      sched_compl : time := time(10);
      local_work  : float := 1.0;
    rules
      exp_compl = max(depends_on.exp_compl default time(0)) + local_work;
      late = later_than(exp_compl, sched_compl);
    constraints
      sane = local_work >= 0.0 message "neg";
  end object;
|}

let test_milestone_inference () =
  Alcotest.check ty "exp_compl is time" Tc.T_time
    (infer_src milestone_src ~class_name:"milestone" ~attr:"exp_compl");
  Alcotest.check ty "late is bool" Tc.T_bool
    (infer_src milestone_src ~class_name:"milestone" ~attr:"late");
  Alcotest.(check (list string)) "no errors" [] (check_src milestone_src)

let test_mutual_recursion () =
  (* Two rules defined in terms of each other across a relationship. *)
  let src =
    {|
    object class a is
      relationships to_b : b multi plug inverse to_a;
      attributes base : int;
      rules
        va = base + sum(to_b.vb default 0);
    end object;
    object class b is
      relationships to_a : a multi socket inverse to_b;
      rules
        vb = count(to_a.va);
    end object;
  |}
  in
  Alcotest.check ty "va : int" Tc.T_int (infer_src src ~class_name:"a" ~attr:"va");
  Alcotest.check ty "vb : int" Tc.T_int (infer_src src ~class_name:"b" ~attr:"vb");
  Alcotest.(check (list string)) "clean" [] (check_src src)

let test_int_float_widening () =
  let src =
    {|
    object class c is
      attributes n : int; f : float;
      rules
        mixed = n + f;
        halves = if n > 0 then f else n;
    end object;
  |}
  in
  Alcotest.check ty "mixed widens" Tc.T_float (infer_src src ~class_name:"c" ~attr:"mixed");
  Alcotest.check ty "if branches widen" Tc.T_float (infer_src src ~class_name:"c" ~attr:"halves")

let cases_ill =
  [
    ill_typed "bool arithmetic" ~expecting:"cannot add"
      {| object class c is
           attributes flag : bool;
           rules bad = flag + 1;
         end object; |};
    ill_typed "string comparison with int" ~expecting:"comparing"
      {| object class c is
           attributes name : string;
           rules bad = name > 3;
         end object; |};
    ill_typed "non-bool constraint" ~expecting:"expected bool"
      {| object class c is
           attributes n : int;
           constraints broken = n + 1 message "m";
         end object; |};
    ill_typed "non-bool condition" ~expecting:"expected bool"
      {| object class c is
           attributes n : int;
           rules bad = if n then 1 else 2;
         end object; |};
    ill_typed "unknown attribute" ~expecting:"no attribute"
      {| object class c is
           rules bad = missing + 1;
         end object; |};
    ill_typed "unknown attribute across relationship" ~expecting:"has no attribute"
      {| object class c is
           relationships kids : c multi plug inverse parent;
           relationships parent : c multi socket inverse kids;
           rules bad = sum(kids.nothing default 0);
         end object; |};
    ill_typed "sum over strings" ~expecting:"sum over string"
      {| object class c is
           relationships kids : c multi plug inverse parent;
           relationships parent : c multi socket inverse kids;
           attributes name : string;
           rules bad = sum(kids.name default "");
         end object; |};
    ill_typed "default type mismatch" ~expecting:"reconcile"
      {| object class c is
           attributes n : int := "oops";
         end object; |};
    ill_typed "time minus picks float" ~expecting:"cannot subtract"
      {| object class c is
           attributes t : time; name : string;
           rules bad = t - name;
         end object; |};
    ill_typed "subtype predicate not bool" ~expecting:"expected bool"
      {| object class c is
           attributes n : int;
         end object;
         subtype s of c where n + 1 end subtype; |};
  ]

let () =
  Alcotest.run "cactis-typecheck"
    ([
       Alcotest.test_case "figure 1 inference" `Quick test_milestone_inference;
       Alcotest.test_case "mutual recursion" `Quick test_mutual_recursion;
       Alcotest.test_case "numeric widening" `Quick test_int_float_widening;
     ]
     @ cases_ill
    |> fun cases -> [ ("typecheck", cases) ])
