module Diag = Cactis_analysis.Diag

type directive =
  | Drop_rule of { type_name : string; attr : string }
  | Declare_attr of { type_name : string; attr : string; ty : Ast.value_type }

let directive_to_string = function
  | Drop_rule { type_name; attr } -> Printf.sprintf "drop-rule:%s.%s" type_name attr
  | Declare_attr { type_name; attr; ty } ->
    Printf.sprintf "declare-attr:%s.%s:%s" type_name attr (Ast.type_name ty)

let value_type_of_name = function
  | "int" -> Some Ast.T_int
  | "float" -> Some Ast.T_float
  | "bool" -> Some Ast.T_bool
  | "string" -> Some Ast.T_string
  | "time" -> Some Ast.T_time
  | _ -> None

let parse_directive s =
  match String.index_opt s ':' with
  | None -> None
  | Some i -> (
    let verb = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    let split_dot r =
      match String.index_opt r '.' with
      | None -> None
      | Some j -> Some (String.sub r 0 j, String.sub r (j + 1) (String.length r - j - 1))
    in
    match verb with
    | "drop-rule" -> (
      match split_dot rest with
      | Some (type_name, attr) when type_name <> "" && attr <> "" ->
        Some (Drop_rule { type_name; attr })
      | _ -> None)
    | "declare-attr" -> (
      match String.rindex_opt rest ':' with
      | None -> None
      | Some j -> (
        let qual = String.sub rest 0 j in
        let ty = String.sub rest (j + 1) (String.length rest - j - 1) in
        match (split_dot qual, value_type_of_name ty) with
        | Some (type_name, attr), Some ty when type_name <> "" && attr <> "" ->
          Some (Declare_attr { type_name; attr; ty })
        | _ -> None))
    | _ -> None)

(* Apply one directive; [None] when nothing in the AST matched (the
   directive targets a type or rule this file does not declare). *)
let apply items directive =
  let changed = ref false in
  let items =
    List.map
      (fun item ->
        match (item, directive) with
        | Ast.Class c, Drop_rule { type_name; attr } when c.Ast.cl_name = type_name ->
          let keep (r : Ast.rule_decl) = r.Ast.ru_name <> attr in
          if List.for_all keep c.Ast.cl_rules then item
          else begin
            changed := true;
            Ast.Class { c with Ast.cl_rules = List.filter keep c.Ast.cl_rules }
          end
        | Ast.Subtype su, Drop_rule { type_name; attr } when su.Ast.su_name = type_name ->
          let keep (r : Ast.rule_decl) = r.Ast.ru_name <> attr in
          if List.for_all keep su.Ast.su_rules then item
          else begin
            changed := true;
            Ast.Subtype { su with Ast.su_rules = List.filter keep su.Ast.su_rules }
          end
        | Ast.Class c, Declare_attr { type_name; attr; ty } when c.Ast.cl_name = type_name ->
          let declared =
            List.exists (fun (a : Ast.attr_decl) -> a.Ast.ad_name = attr) c.Ast.cl_attrs
            || List.exists (fun (r : Ast.rule_decl) -> r.Ast.ru_name = attr) c.Ast.cl_rules
          in
          if declared then item
          else begin
            changed := true;
            Ast.Class
              {
                c with
                Ast.cl_attrs =
                  c.Ast.cl_attrs @ [ { Ast.ad_name = attr; ad_type = ty; ad_default = None } ];
              }
          end
        | _ -> item)
      items
  in
  if !changed then Some items else None

let fixes diags = List.filter_map (fun d -> d.Diag.fix) diags |> List.filter_map parse_directive

let run ?(max_rounds = 8) ~lint items =
  let applied = ref [] in
  let rec go round items =
    if round >= max_rounds then items
    else
      let directives = fixes (lint items) in
      let items', progressed =
        List.fold_left
          (fun (items, progressed) d ->
            match apply items d with
            | Some items' ->
              applied := d :: !applied;
              (items', true)
            | None -> (items, progressed))
          (items, false) directives
      in
      (* Re-lint after each round: dropping a dead rule can orphan the
         rules it read, surfacing a fresh crop of dead-attr fixes. *)
      if progressed then go (round + 1) items' else items
  in
  let items = go 0 items in
  (items, List.rev !applied)
