(** Real-parallel multi-client driver for {!Timestamp_cc}.

    The deterministic {!Interleave} driver simulates concurrency by
    picking whose operation runs next from a seeded RNG.  This driver
    runs each client on its {e own OCaml 5 domain}: the interleaving is
    whatever the OS scheduler produces — genuinely nondeterministic —
    while a single global mutex keeps the granularity identical to the
    interleaver's (one workload op, including the read+write of an
    [Incr], executes atomically against the shared manager).

    Timestamp ordering must deliver serializability {e regardless} of
    interleaving, so the same oracle applies: sort the committed scripts
    by commit timestamp and replay serially
    ({!Serial_oracle.replay} / {!Serial_oracle.equivalent}).  Only the
    abort/restart counts and the commit order vary run to run. *)

type stats = {
  committed : int;
  restarts : int;
  starved : int;  (** scripts dropped after [max_restarts] attempts *)
  ops_executed : int;
  committed_scripts : (int * Workload.script) list;
      (** commit timestamp + script, sorted by timestamp — the serial
          oracle's input order *)
}

(** [run ~cc ~clients ()] — one domain per client; returns after every
    domain has drained its scripts. *)
val run : ?max_restarts:int -> cc:Timestamp_cc.t -> clients:Workload.script list list -> unit -> stats
