(** Deterministic, splittable pseudo-random number generator.

    All randomized workloads in the repository (tests, benchmarks,
    concurrency simulations) draw from this generator so that every run is
    reproducible from a single integer seed.  The implementation is
    SplitMix64, which has a cheap [split] operation producing an
    independent stream — convenient for seeding per-client or per-worker
    streams in the multi-user simulator. *)

type t

(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)
val create : int -> t

(** [split t] returns a new generator whose stream is statistically
    independent of [t]'s subsequent output. *)
val split : t -> t

(** [int t bound] is a uniform integer in [\[0, bound)].  [bound] must be
    positive. *)
val int : t -> int -> int

(** [int_in t lo hi] is a uniform integer in [\[lo, hi\]] (inclusive). *)
val int_in : t -> int -> int -> int

(** [float t bound] is a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] is a fair coin flip. *)
val bool : t -> bool

(** [chance t p] is true with probability [p] (clamped to [\[0, 1\]]). *)
val chance : t -> float -> bool

(** [pick t arr] selects a uniformly random element of [arr].
    @raise Invalid_argument if [arr] is empty. *)
val pick : t -> 'a array -> 'a

(** [pick_list t l] selects a uniformly random element of [l].
    @raise Invalid_argument if [l] is empty. *)
val pick_list : t -> 'a list -> 'a

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [exponential t mean] samples an exponential distribution with the
    given mean; used for skewed access patterns in storage workloads. *)
val exponential : t -> float -> float

(** [zipf t n theta] samples an integer in [\[0, n)] with a Zipf-like skew
    parameter [theta] (0 = uniform; larger = more skewed).  Used to model
    the hot/cold instance-access skew that the clustering experiments
    depend on. *)
val zipf : t -> int -> float -> int
