lib/apps/uidemo.mli: Cactis
