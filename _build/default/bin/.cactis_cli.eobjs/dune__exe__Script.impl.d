bin/script.ml: Buffer Cactis Cactis_ddl Format Fun Hashtbl List String
