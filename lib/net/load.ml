type child = {
  c_pid : int;
  c_fd : Unix.file_descr;  (* read end of the child's stdout *)
  c_buf : Buffer.t;  (* bytes read but not yet returned as lines *)
  mutable c_eof : bool;
  mutable c_status : Unix.process_status option;
}

let pid c = c.c_pid

let spawn ~args =
  let r, w = Unix.pipe ~cloexec:false () in
  let null = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0 in
  let argv = Array.of_list (Sys.executable_name :: args) in
  let child_pid = Unix.create_process Sys.executable_name argv null w Unix.stderr in
  Unix.close w;
  Unix.close null;
  { c_pid = child_pid; c_fd = r; c_buf = Buffer.create 256; c_eof = false; c_status = None }

let rec restart f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart f

(* Pop one complete line from the buffer, if present. *)
let pop_line c =
  let s = Buffer.contents c.c_buf in
  match String.index_opt s '\n' with
  | None -> None
  | Some i ->
    Buffer.clear c.c_buf;
    Buffer.add_substring c.c_buf s (i + 1) (String.length s - i - 1);
    Some (String.sub s 0 i)

let read_line ?(timeout_s = 30.0) c =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match pop_line c with
    | Some line -> Some line
    | None ->
      if c.c_eof then
        (* EOF: a trailing unterminated fragment still counts as a line. *)
        if Buffer.length c.c_buf > 0 then begin
          let line = Buffer.contents c.c_buf in
          Buffer.clear c.c_buf;
          Some line
        end
        else None
      else begin
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then
          failwith (Printf.sprintf "load child %d: no output within %.1fs" c.c_pid timeout_s);
        match restart (fun () -> Unix.select [ c.c_fd ] [] [] remaining) with
        | [], _, _ -> go ()  (* timed out; loop re-checks the deadline *)
        | _ ->
          let n = restart (fun () -> Unix.read c.c_fd chunk 0 (Bytes.length chunk)) in
          if n = 0 then c.c_eof <- true
          else Buffer.add_subbytes c.c_buf chunk 0 n;
          go ()
      end
  in
  go ()

let reap c =
  match c.c_status with
  | Some st -> st
  | None ->
    let _, st = restart (fun () -> Unix.waitpid [] c.c_pid) in
    c.c_status <- Some st;
    (try Unix.close c.c_fd with _ -> ());
    st

let wait c =
  let rec drain acc =
    match read_line ~timeout_s:30.0 c with
    | Some line -> drain (line :: acc)
    | None -> List.rev acc
  in
  let lines = drain [] in
  (lines, reap c)

let terminate c =
  (try Unix.kill c.c_pid Sys.sigterm with Unix.Unix_error (Unix.ESRCH, _, _) -> ());
  wait c

let kv line =
  match String.split_on_char ' ' (String.trim line) with
  | [] -> []
  | tag :: rest ->
    ("_tag", tag)
    :: List.filter_map
         (fun tok ->
           match String.index_opt tok '=' with
           | Some i ->
             Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
           | None -> None)
         rest
