lib/cc/workload.mli: Cactis Cactis_util
