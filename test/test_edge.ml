(* Edge cases and error paths: value operations, schema validation,
   cardinalities, failed rules, watch/unwatch, live re-clustering, tag
   invalidation, deep graphs. *)

module Value = Cactis.Value
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Db = Cactis.Db
module Engine = Cactis.Engine
module Errors = Cactis.Errors
module Vtime = Cactis_util.Vtime

let int n = Value.Int n

(* ------------------------------------------------------------------ *)
(* Value module                                                        *)

let test_value_arith () =
  Alcotest.(check string) "int add" "7" (Value.to_string (Value.add (int 3) (int 4)));
  Alcotest.(check string) "mixed add widens" "7.5"
    (Value.to_string (Value.add (int 3) (Value.Float 4.5)));
  Alcotest.(check string) "string concat" "\"ab\""
    (Value.to_string (Value.add (Value.Str "a") (Value.Str "b")));
  Alcotest.(check string) "time plus days" "day 4.50"
    (Value.to_string (Value.add (Value.Time (Vtime.of_days 3.0)) (Value.Float 1.5)));
  Alcotest.(check string) "time difference" "2"
    (Value.to_string (Value.sub (Value.Time (Vtime.of_days 5.0)) (Value.Time (Vtime.of_days 3.0))));
  (match Value.div (int 1) (int 0) with
  | _ -> Alcotest.fail "div by zero"
  | exception Errors.Type_error _ -> ());
  match Value.add (Value.Bool true) (int 1) with
  | _ -> Alcotest.fail "bool + int"
  | exception Errors.Type_error _ -> ()

let test_value_aggregates () =
  Alcotest.(check string) "sum empty" "0" (Value.to_string (Value.sum []));
  Alcotest.(check string) "sum" "6" (Value.to_string (Value.sum [ int 1; int 2; int 3 ]));
  Alcotest.(check string) "max with default" "5"
    (Value.to_string (Value.max_ ~default:(int 5) []));
  (match Value.max_ [] with
  | _ -> Alcotest.fail "max of empty without default"
  | exception Errors.Type_error _ -> ());
  Alcotest.(check string) "all of empty" "true" (Value.to_string (Value.all_ []));
  Alcotest.(check string) "any of empty" "false" (Value.to_string (Value.any_ []))

let test_value_compare () =
  Alcotest.(check bool) "int < float cross" true (Value.lt (int 1) (Value.Float 1.5));
  Alcotest.(check bool) "arrays lexicographic" true
    (Value.lt (Value.Arr [| int 1; int 2 |]) (Value.Arr [| int 1; int 3 |]));
  Alcotest.(check bool) "shorter array first" true
    (Value.lt (Value.Arr [| int 1 |]) (Value.Arr [| int 1; int 0 |]));
  Alcotest.(check bool) "records equal" true
    (Value.equal (Value.Rec [ ("a", int 1) ]) (Value.Rec [ ("a", int 1) ]));
  Alcotest.(check string) "record field" "1"
    (Value.to_string (Value.field (Value.Rec [ ("a", int 1) ]) "a"));
  match Value.field (Value.Rec []) "missing" with
  | _ -> Alcotest.fail "missing field"
  | exception Errors.Type_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Schema validation                                                   *)

let test_schema_validation () =
  let sch = Schema.create () in
  Schema.add_type sch "t";
  (match Schema.add_type sch "t" with
  | _ -> Alcotest.fail "duplicate type"
  | exception Errors.Type_error _ -> ());
  Schema.add_attr sch ~type_name:"t" (Rule.intrinsic "x" (int 0));
  (match Schema.add_attr sch ~type_name:"t" (Rule.intrinsic "x" (int 0)) with
  | _ -> Alcotest.fail "duplicate attr"
  | exception Errors.Type_error _ -> ());
  (* Rule reading an unknown attribute is rejected eagerly. *)
  (match Schema.add_attr sch ~type_name:"t" (Rule.derived "bad" (Rule.copy_self "nope")) with
  | _ -> Alcotest.fail "unknown source attr"
  | exception Errors.Type_error _ -> ());
  (* Rule reading an unknown relationship is rejected eagerly. *)
  (match
     Schema.add_attr sch ~type_name:"t" (Rule.derived "bad" (Rule.sum_rel "norel" "x"))
   with
  | _ -> Alcotest.fail "unknown source rel"
  | exception Errors.Type_error _ -> ());
  (* Constraints only attach to derived attributes. *)
  (match
     Schema.add_attr sch ~type_name:"t"
       {
         Schema.attr_name = "c";
         kind = Schema.Intrinsic (Value.Bool true);
         constraint_ = Some { Schema.message = "m"; recovery = None };
       }
   with
  | _ -> Alcotest.fail "constraint on intrinsic"
  | exception Errors.Type_error _ -> ());
  match Schema.add_rel sch ~type_name:"t"
          { Schema.rel_name = "r"; target = "missing"; inverse = "ri"; card = Schema.Multi;
            polarity = Schema.Plug }
  with
  | _ -> Alcotest.fail "unknown target type"
  | exception Errors.Unknown _ -> ()

(* ------------------------------------------------------------------ *)
(* Cardinalities and link errors                                       *)

let one_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "person";
  Schema.add_type sch "car";
  Schema.declare_relationship sch ~from_type:"car" ~rel:"owner" ~to_type:"person"
    ~inverse:"cars" ~card:Schema.One ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"person" (Rule.intrinsic "name" (Value.Str ""));
  Schema.add_attr sch ~type_name:"car" (Rule.intrinsic "plate" (Value.Str ""));
  sch

let test_one_cardinality () =
  let db = Db.create (one_schema ()) in
  let alice = Db.create_instance db "person" in
  let bob = Db.create_instance db "person" in
  let car = Db.create_instance db "car" in
  Db.link db ~from_id:car ~rel:"owner" ~to_id:alice;
  (match Db.link db ~from_id:car ~rel:"owner" ~to_id:bob with
  | _ -> Alcotest.fail "expected cardinality violation"
  | exception Errors.Cardinality _ -> ());
  (* Relinking after unlink is fine. *)
  Db.unlink db ~from_id:car ~rel:"owner" ~to_id:alice;
  Db.link db ~from_id:car ~rel:"owner" ~to_id:bob;
  Alcotest.(check (list int)) "owner" [ bob ] (Db.related db car "owner")

let test_link_errors () =
  let db = Db.create (one_schema ()) in
  let alice = Db.create_instance db "person" in
  let car = Db.create_instance db "car" in
  (* Wrong target type. *)
  (match Db.link db ~from_id:car ~rel:"owner" ~to_id:car with
  | _ -> Alcotest.fail "type mismatch"
  | exception Errors.Type_error _ -> ());
  (* Unknown relationship. *)
  (match Db.link db ~from_id:car ~rel:"wheels" ~to_id:alice with
  | _ -> Alcotest.fail "unknown rel"
  | exception Errors.Unknown _ -> ());
  (* Unlink of a non-existent link. *)
  match Db.unlink db ~from_id:car ~rel:"owner" ~to_id:alice with
  | _ -> Alcotest.fail "no such link"
  | exception Errors.Unknown _ -> ()

let test_set_errors () =
  let db = Db.create (one_schema ()) in
  let alice = Db.create_instance db "person" in
  (match Db.set db alice "nope" (int 1) with
  | _ -> Alcotest.fail "unknown attr"
  | exception Errors.Unknown _ -> ());
  (match Db.get db 999 "name" with
  | _ -> Alcotest.fail "unknown instance"
  | exception Errors.Unknown _ -> ());
  (* Failed auto-op must not leave a transaction open or history entry. *)
  Alcotest.(check bool) "no txn open" false (Db.in_txn db);
  Alcotest.(check int) "history unchanged" 1 (Db.position db)

(* ------------------------------------------------------------------ *)
(* Engine edge cases                                                   *)

let node_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "local" (int 1));
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "total"
       (Rule.combine_self_rel "local" "deps" "total" ~f:(fun own totals ->
            Value.add own (Value.sum totals))));
  sch

let test_failing_rule_recoverable () =
  let sch = node_schema () in
  (* A rule that raises on specific inputs; the database must remain
     usable after the failure. *)
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "picky"
       (Rule.map1 "local" (fun v ->
            if Value.as_int v = 13 then Errors.type_error "unlucky" else v)));
  let db = Db.create sch in
  let a = Db.create_instance db "node" in
  Alcotest.(check string) "works initially" "1" (Value.to_string (Db.get db a "picky"));
  (* "picky" is watched now, so the auto-commit of the poisoned update
     propagates, hits the failing rule, and rolls the update back. *)
  (match Db.set db a "local" (int 13) with
  | _ -> Alcotest.fail "expected rule failure at commit"
  | exception Errors.Type_error _ -> ());
  Alcotest.(check string) "poisoned update rolled back" "1"
    (Value.to_string (Db.get db a "local"));
  (* The database stays usable; no stale In_progress state. *)
  Db.set db a "local" (int 14);
  Alcotest.(check string) "usable after failure" "14" (Value.to_string (Db.get db a "picky"));
  Alcotest.(check string) "other attrs fine" "14" (Value.to_string (Db.get db a "total"))

let test_undeclared_source_read_fails () =
  let sch = node_schema () in
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "cheater"
       { Schema.sources = [ Schema.Self "local" ];
         compute = (fun env -> env.Schema.self_value "total") });
  let db = Db.create sch in
  let a = Db.create_instance db "node" in
  match Db.get db a "cheater" with
  | _ -> Alcotest.fail "undeclared read must fail"
  | exception Errors.Type_error _ -> ()

let test_watch_unwatch () =
  let db = Db.create (node_schema ()) in
  let a = Db.create_instance db "node" in
  let b = Db.create_instance db "node" in
  Db.link db ~from_id:a ~rel:"deps" ~to_id:b;
  ignore (Db.get db a "total");
  let c = Db.counters db in
  (* Watched: a change evaluates at commit. *)
  let before = Cactis_util.Counters.get c "rule_evals" in
  Db.set db b "local" (int 5);
  Alcotest.(check bool) "watched -> evaluated eagerly" true
    (Cactis_util.Counters.get c "rule_evals" > before);
  (* Unwatched: the same change only marks. *)
  Db.unwatch db a "total";
  Db.unwatch db b "total";
  let before = Cactis_util.Counters.get c "rule_evals" in
  Db.set db b "local" (int 6);
  Alcotest.(check int) "unwatched -> lazy" before (Cactis_util.Counters.get c "rule_evals")

let test_recluster_preserves_semantics () =
  let db = Db.create ~block_capacity:2 ~buffer_capacity:2 (node_schema ()) in
  let ids = Array.init 20 (fun _ -> Db.create_instance db "node") in
  for i = 0 to 18 do
    Db.link db ~from_id:ids.(i) ~rel:"deps" ~to_id:ids.(i + 1)
  done;
  ignore (Db.get db ids.(0) "total");
  let before = Value.to_string (Db.get db ids.(0) "total") in
  let blocks = Db.recluster db in
  Alcotest.(check bool) "some blocks" true (blocks >= 10);
  Alcotest.(check string) "value unchanged" before (Value.to_string (Db.get db ids.(0) "total"));
  Db.set db ids.(19) "local" (int 42);
  (* 19 nodes at 1 plus the updated tail at 42. *)
  Alcotest.(check string) "updates still propagate" "61"
    (Value.to_string (Db.get db ids.(0) "total"))

let test_version_branches () =
  (* Committing after a checkout grows a sibling branch; the old branch
     stays reachable through its tag (version trees, §3). *)
  let db = Db.create (node_schema ()) in
  let a = Db.create_instance db "node" in
  Db.set db a "local" (int 2);
  Db.tag db "v1";
  Db.set db a "local" (int 3);
  Db.tag db "v2";
  Db.checkout db "v1";
  Db.set db a "local" (int 99);
  Db.tag db "branch2";
  (* Cross-branch checkout through the common ancestor. *)
  Db.checkout db "v2";
  Alcotest.(check string) "old branch intact" "3" (Value.to_string (Db.get db a "local"));
  Db.checkout db "branch2";
  Alcotest.(check string) "new branch intact" "99" (Value.to_string (Db.get db a "local"));
  Db.checkout db "v1";
  Alcotest.(check string) "common ancestor" "2" (Value.to_string (Db.get db a "local"));
  (* Unknown tags still fail loudly. *)
  match Db.checkout db "nope" with
  | _ -> Alcotest.fail "unknown tag"
  | exception Errors.Unknown _ -> ()

let test_abort_with_create_delete () =
  let db = Db.create (node_schema ()) in
  let a = Db.create_instance db "node" in
  Db.set db a "local" (int 5);
  let count_before = List.length (Db.instance_ids db) in
  Db.begin_txn db;
  let b = Db.create_instance db "node" in
  Db.link db ~from_id:a ~rel:"deps" ~to_id:b;
  Db.delete_instance db b;
  let c = Db.create_instance db "node" in
  Db.link db ~from_id:a ~rel:"deps" ~to_id:c;
  Db.abort db;
  Alcotest.(check int) "instances restored" count_before (List.length (Db.instance_ids db));
  Alcotest.(check (list int)) "links restored" [] (Db.related db a "deps");
  Alcotest.(check string) "value intact" "5" (Value.to_string (Db.get db a "local"))

let test_deep_chain_no_stack_overflow () =
  (* The chunked evaluator must handle depth far beyond the OCaml stack
     comfort zone for recursive evaluators with small frames. *)
  let db = Db.create (node_schema ()) in
  let n = 30_000 in
  let ids = Array.init n (fun _ -> Db.create_instance db "node") in
  for i = 0 to n - 2 do
    Db.link db ~from_id:ids.(i) ~rel:"deps" ~to_id:ids.(i + 1)
  done;
  Alcotest.(check string) "deep total" (string_of_int n)
    (Value.to_string (Db.get db ids.(0) "total"))

let test_explain_tree () =
  let db = Db.create (node_schema ()) in
  let a = Db.create_instance db "node" in
  let b = Db.create_instance db "node" in
  let c = Db.create_instance db "node" in
  (* a depends on b and c; b depends on c (shared sub-derivation). *)
  Db.link db ~from_id:a ~rel:"deps" ~to_id:b;
  Db.link db ~from_id:a ~rel:"deps" ~to_id:c;
  Db.link db ~from_id:b ~rel:"deps" ~to_id:c;
  (* watch:false — a later change must leave the value lazily stale so
     the explanation can show it. *)
  ignore (Db.get db ~watch:false a "total");
  let module E = Cactis.Explain in
  let t = E.tree db a "total" in
  Alcotest.(check bool) "root fresh" true t.E.fresh;
  Alcotest.(check int) "root children: local + 2 deps" 3 (List.length t.E.children);
  (* c's total appears twice in the graph; the second occurrence is
     marked shared, not re-expanded. *)
  let rec count_kind kind (n : E.node) =
    (if n.E.kind = kind && n.E.attr = "total" && n.E.id = c then 1 else 0)
    + List.fold_left (fun acc ch -> acc + count_kind kind ch) 0 n.E.children
  in
  Alcotest.(check int) "c expanded once" 1 (count_kind `Derived t);
  Alcotest.(check int) "c shared once" 1 (count_kind `Shared t);
  (* Staleness is visible without evaluating. *)
  Db.set db c "local" (int 10);
  let t2 = E.tree db a "total" in
  Alcotest.(check bool) "root stale after change" false t2.E.fresh;
  let rendered = E.render db a "total" in
  Alcotest.(check bool) "render mentions staleness" true
    (String.length rendered > 0
    &&
    let rec has_sub i =
      i + 7 <= String.length rendered
      && (String.sub rendered i 7 = "(stale)" || has_sub (i + 1))
    in
    has_sub 0);
  (* Explaining must not evaluate. *)
  Alcotest.(check bool) "still stale" true (Cactis.Engine.is_out_of_date (Db.engine db) a "total")

let test_explain_render_markers () =
  let db = Db.create (node_schema ()) in
  let a = Db.create_instance db "node" in
  let b = Db.create_instance db "node" in
  let c = Db.create_instance db "node" in
  Db.link db ~from_id:a ~rel:"deps" ~to_id:b;
  Db.link db ~from_id:a ~rel:"deps" ~to_id:c;
  Db.link db ~from_id:b ~rel:"deps" ~to_id:c;
  ignore (Db.get db ~watch:false a "total");
  let module E = Cactis.Explain in
  (* Invalidate the shared sub-derivation: every node above it goes
     stale, and the explanation must report cached values untouched. *)
  Db.set db c "local" (int 10);
  let t = E.tree db a "total" in
  let rec find_shared (n : E.node) =
    if n.E.kind = `Shared then Some n
    else List.find_map find_shared n.E.children
  in
  let shared = match find_shared t with Some n -> n | None -> Alcotest.fail "no shared node" in
  Alcotest.(check int) "shared node is c" c shared.E.id;
  Alcotest.(check bool) "shared node reports staleness" false shared.E.fresh;
  Alcotest.(check (option string)) "shared node names the link" (Some "deps") shared.E.via;
  Alcotest.(check string) "shared node keeps the cached value" "1"
    (Value.to_string shared.E.value);
  let rendered = E.render db a "total" in
  let lines = String.split_on_char '\n' rendered in
  let has_sub line needle =
    let nl = String.length needle and ll = String.length line in
    let rec go i = i + nl <= ll && (String.sub line i nl = needle || go (i + 1)) in
    go 0
  in
  let shared_lines = List.filter (fun l -> has_sub l "(shared, expanded above)") lines in
  Alcotest.(check int) "one shared marker" 1 (List.length shared_lines);
  Alcotest.(check bool) "shared line also marked stale" true
    (has_sub (List.hd shared_lines) "(stale)");
  Alcotest.(check bool) "some line marked stale" true
    (List.exists (fun l -> has_sub l "(stale)") lines);
  (* Rendering is diagnostic only: nothing got evaluated. *)
  Alcotest.(check bool) "still stale after render" true
    (Cactis.Engine.is_out_of_date (Db.engine db) a "total");
  (* Once re-evaluated, the markers disappear. *)
  ignore (Db.get db ~watch:false a "total");
  let rendered2 = E.render db a "total" in
  Alcotest.(check bool) "no stale marker when fresh" false (has_sub rendered2 "(stale)")

let test_nested_txn_rejected () =
  let db = Db.create (node_schema ()) in
  Db.begin_txn db;
  (match Db.begin_txn db with
  | _ -> Alcotest.fail "nested txn"
  | exception Errors.Type_error _ -> ());
  Db.abort db;
  match Db.abort db with
  | _ -> Alcotest.fail "double abort"
  | exception Errors.Type_error _ -> ()

let () =
  Alcotest.run "cactis-edge"
    [
      ( "values",
        [
          Alcotest.test_case "arithmetic" `Quick test_value_arith;
          Alcotest.test_case "aggregates" `Quick test_value_aggregates;
          Alcotest.test_case "comparison" `Quick test_value_compare;
        ] );
      ( "schema",
        [
          Alcotest.test_case "validation" `Quick test_schema_validation;
          Alcotest.test_case "one cardinality" `Quick test_one_cardinality;
          Alcotest.test_case "link errors" `Quick test_link_errors;
          Alcotest.test_case "set/get errors" `Quick test_set_errors;
        ] );
      ( "engine",
        [
          Alcotest.test_case "failing rule recoverable" `Quick test_failing_rule_recoverable;
          Alcotest.test_case "undeclared source rejected" `Quick test_undeclared_source_read_fails;
          Alcotest.test_case "watch/unwatch" `Quick test_watch_unwatch;
          Alcotest.test_case "recluster preserves semantics" `Quick test_recluster_preserves_semantics;
          Alcotest.test_case "deep chain (chunked evaluator)" `Quick test_deep_chain_no_stack_overflow;
          Alcotest.test_case "explain tree" `Quick test_explain_tree;
          Alcotest.test_case "explain render markers" `Quick test_explain_render_markers;
        ] );
      ( "transactions",
        [
          Alcotest.test_case "version branches" `Quick test_version_branches;
          Alcotest.test_case "abort create/delete" `Quick test_abort_with_create_delete;
          Alcotest.test_case "nested txn rejected" `Quick test_nested_txn_rejected;
        ] );
    ]
