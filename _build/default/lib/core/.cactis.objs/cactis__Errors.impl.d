lib/core/errors.ml: Format
