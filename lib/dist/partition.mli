(** Distributed Cactis prototype (§5, "Directions").

    The paper closes with a distributed version "just getting under way":
    users on different workstations hold parts of the database, and
    "various sub-traversals may actually be running at the same time".
    The communication cost of such a system is determined by how often
    the attribute-evaluation and marking traversals cross a relationship
    whose endpoints live on different sites — exactly the crossing
    statistic the storage layer already collects for clustering.

    This module prototypes the data-placement half of that design:
    instances are assigned to sites, and the self-adaptive usage
    statistics drive the placement with the very same greedy algorithm
    the paper uses for disk blocks (a site is a "block" whose capacity is
    its share of the database).  The message model charges one message
    per traversal crossing of an inter-site link (a value request/reply
    or a remote mark), so the experiment can compare placements without
    simulating a network stack. *)

type t

val sites : t -> int

(** [site_of t id] — the instance's site, if placed. *)
val site_of : t -> int -> int option

(** Instances per site, by site index. *)
val balance : t -> int array

(** [random rng ~ids ~sites] — uniform random placement (baseline). *)
val random : Cactis_util.Rng.t -> ids:int list -> sites:int -> t

(** [round_robin ~ids ~sites] — creation-order striping (the placement a
    naive system would produce). *)
val round_robin : ids:int list -> sites:int -> t

(** [by_range ~ids ~sites] — contiguous id-range sharding: the sorted
    ids are split into [sites] near-equal chunks.  Range placements can
    route ids created {e after} the partition was drawn (see
    {!site_of_range}), which the server's reader-affinity routing
    relies on. *)
val by_range : ids:int list -> sites:int -> t

(** [site_of_range t id] — the site whose id range contains [id]
    (total: every id maps to some site).  Raises [Invalid_argument] if
    [t] was not built by {!by_range}. *)
val site_of_range : t -> int -> int

(** The range partition's inclusive lower bounds, by site index
    ([bounds.(0)] is [min_int]).  Empty for non-range placements. *)
val range_bounds : t -> int array

(** [by_usage store ~sites] — usage-driven placement: the paper's greedy
    clustering with per-site capacity ⌈n/sites⌉, seeded from the store's
    accumulated access and crossing counts. *)
val by_usage : Cactis.Store.t -> sites:int -> t

(** [cross_site_traffic store t] — total messages implied by the
    accumulated crossing statistics: each traversal crossing of a link
    whose endpoints are on different sites costs one message. *)
val cross_site_traffic : Cactis.Store.t -> t -> int

(** [local_traffic store t] — crossings that stayed on one site. *)
val local_traffic : Cactis.Store.t -> t -> int
