lib/cc/timestamp_cc.ml: Cactis Hashtbl List
