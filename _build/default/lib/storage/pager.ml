type t = {
  block_cap : int;
  disk_dev : Disk.t;
  buffer : Buffer_pool.t;
  placement : (int, int) Hashtbl.t;
  mutable tail_block : int;
  mutable tail_used : int;
}

let create ?(block_capacity = 8) ?(buffer_capacity = 64) () =
  if block_capacity < 1 then invalid_arg "Pager.create: block_capacity must be >= 1";
  let disk_dev = Disk.create () in
  {
    block_cap = block_capacity;
    disk_dev;
    buffer = Buffer_pool.create ~capacity:buffer_capacity disk_dev;
    placement = Hashtbl.create 256;
    tail_block = 0;
    tail_used = 0;
  }

let register t id =
  if not (Hashtbl.mem t.placement id) then begin
    if t.tail_used >= t.block_cap then begin
      t.tail_block <- t.tail_block + 1;
      t.tail_used <- 0
    end;
    Hashtbl.replace t.placement id t.tail_block;
    t.tail_used <- t.tail_used + 1
  end

let forget t id = Hashtbl.remove t.placement id

let block_of t id = Hashtbl.find_opt t.placement id

let touch t id =
  let block =
    match block_of t id with
    | Some b -> b
    | None ->
      register t id;
      Hashtbl.find t.placement id
  in
  Buffer_pool.touch t.buffer block

let resident t id =
  match block_of t id with Some b -> Buffer_pool.resident t.buffer b | None -> false

let apply_clustering t (assignment : Cluster.assignment) =
  Hashtbl.reset t.placement;
  Hashtbl.iter (fun id block -> Hashtbl.replace t.placement id block) assignment.Cluster.block_of;
  (* New instances created after re-clustering go to fresh blocks. *)
  t.tail_block <- assignment.Cluster.block_count;
  t.tail_used <- 0;
  Buffer_pool.flush t.buffer

let disk t = t.disk_dev
let pool t = t.buffer
let block_capacity t = t.block_cap
let instances t = Hashtbl.fold (fun id _ acc -> id :: acc) t.placement []

let reset_io t =
  Disk.reset t.disk_dev;
  Buffer_pool.reset_stats t.buffer;
  Buffer_pool.flush t.buffer
