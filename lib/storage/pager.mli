(** Maps instance ids to blocks and mediates block access through the
    buffer pool.

    New instances are appended to the current tail block (or into a
    reclaimed slot, see {!forget}); {!apply_clustering} installs a fresh
    placement computed by {!Cluster}; {!relocate} moves one instance at
    a time for incremental re-clustering.

    The pager tracks each block's member list and installs a render
    callback in the buffer pool, so on a real device (created with
    [?disk_path]) dirty evictions and flushes write genuine block
    images; see DESIGN.md §9 for the on-disk format and the fsync
    discipline relative to the WAL. *)

type t

(** [create ?block_capacity ?buffer_capacity ?disk_path ?disk_block_bytes ()]
    builds a pager whose blocks hold at most [block_capacity] instances
    (default 8) over a buffer pool of [buffer_capacity] blocks (default
    64).  When [disk_path] is given the pager is backed by a real block
    file at that path (size [disk_block_bytes], default 4096); otherwise
    I/O is simulated counters only.
    @raise Invalid_argument if [block_capacity < 1] or the block image
    of a full block cannot fit in [disk_block_bytes]. *)
val create :
  ?block_capacity:int ->
  ?buffer_capacity:int ->
  ?disk_path:string ->
  ?disk_block_bytes:int ->
  unit ->
  t

(** [register t id] places a new instance: into a reclaimed free slot if
    one is available, else the tail block.  No-op if already placed. *)
val register : t -> int -> unit

(** [forget t id] removes the instance from its block.  If the block is
    resident in the buffer pool (or is the tail block), its freed slot
    is remembered and reused by the next {!register} — so create/delete
    churn does not grow the block count.  Cold blocks' slack is instead
    recovered at the next re-clustering. *)
val forget : t -> int -> unit

(** [block_of t id] is the current block of [id], if registered. *)
val block_of : t -> int -> int option

(** [touch ?dirty t id] charges one buffered access to [id]'s block;
    returns whether the block was already resident.  [dirty] (default
    false) marks the access as a write.  Unknown instances are
    registered first (defensive, keeps the engine total). *)
val touch : ?dirty:bool -> t -> int -> [ `Hit | `Miss ]

(** [mark_dirty t id] marks the instance's block dirty if resident,
    without touching recency or statistics. *)
val mark_dirty : t -> int -> unit

(** [resident t id] is true iff [id]'s block is buffered; used by the
    chunk scheduler's high-priority promotion.  Does not affect LRU
    order or statistics. *)
val resident : t -> int -> bool

(** [relocate t id ~block] moves one placed instance to [block],
    charging a dirty buffered access to both the source and destination
    blocks (the I/O cost of the move).  Used by incremental
    re-clustering; no-op if [id] is unplaced or already in [block]. *)
val relocate : t -> int -> block:int -> unit

(** [advance_tail t block] makes future appends land at or beyond
    [block] (no-op if the tail is already there).  The store calls it
    when cutting a migration plan — reserving the whole target region so
    mid-migration appends cannot overfill a planned block — and again
    when the migration completes. *)
val advance_tail : t -> int -> unit

(** [apply_clustering t assignment] replaces the whole placement.
    Buffered frames are dropped without write-back (their images are
    stale by construction); on a real device every block image of the
    new placement is written and the file synced — the reorganized
    database starts cold. *)
val apply_clustering : t -> Cluster.assignment -> unit

val disk : t -> Disk.t
val pool : t -> Buffer_pool.t
val block_capacity : t -> int

(** Instances currently registered. *)
val instances : t -> int list

(** Number of blocks currently holding at least one instance. *)
val blocks_in_use : t -> int

(** [members_of t block] is the sorted member list of [block]. *)
val members_of : t -> int -> int list

(** [reset_io t] flushes dirty frames (write-backs count toward the
    epoch being closed) and then zeroes the disk and pool counters;
    placement is kept.  Used between experiment phases. *)
val reset_io : t -> unit

(** [sync t] writes back all dirty frames and fsyncs the block file
    (no-op on a simulated device). *)
val sync : t -> unit

(** [close t] closes the backing file, if any. *)
val close : t -> unit
