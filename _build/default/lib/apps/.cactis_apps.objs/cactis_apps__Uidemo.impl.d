lib/apps/uidemo.ml: Cactis Cactis_util List Printf String
