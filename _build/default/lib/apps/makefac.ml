module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Value = Cactis.Value
module Vtime = Cactis_util.Vtime

type t = {
  database : Db.t;
  filesystem : Fs_sim.t;
}

let time v = Value.Time v

let install_schema sch =
  Schema.add_type sch "make_rule";
  Schema.declare_relationship sch ~from_type:"make_rule" ~rel:"depends_on" ~to_type:"make_rule"
    ~inverse:"output" ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"make_rule" (Rule.intrinsic "file_name" (Value.Str ""));
  Schema.add_attr sch ~type_name:"make_rule" (Rule.intrinsic "make_command" (Value.Str ""));
  Schema.add_attr sch ~type_name:"make_rule" (Rule.intrinsic "fs_mtime" (time Vtime.far_future));
  Schema.add_attr sch ~type_name:"make_rule" (Rule.intrinsic "keep_current" (Value.Bool false));
  (* Figure 3: the youngest of this file's own time and everything it
     depends on. *)
  Schema.add_attr sch ~type_name:"make_rule"
    (Rule.derived "mod_time"
       (Rule.combine_self_rel "fs_mtime" "depends_on" "mod_time" ~f:(fun own deps ->
            Value.max_ ~default:own (own :: deps))));
  (* The rebuild decision of Figure 4: missing file, or some dependency
     younger than the file itself. *)
  Schema.add_attr sch ~type_name:"make_rule"
    (Rule.derived "needs_rebuild"
       (Rule.combine_self_rel "fs_mtime" "depends_on" "mod_time" ~f:(fun own deps ->
            let missing = Value.equal own (time Vtime.far_future) in
            let stale = List.exists (fun d -> Value.compare d own > 0) deps in
            Value.Bool (missing || stale))));
  Schema.add_subtype sch
    {
      Schema.sub_name = "keep_current_rule";
      parent = "make_rule";
      predicate = Rule.copy_self "keep_current";
      extra_attrs = [];
    }

let create ?db filesystem =
  let database =
    match db with
    | Some db ->
      install_schema (Db.schema db);
      db
    | None ->
      let sch = Schema.create () in
      install_schema sch;
      Db.create sch
  in
  { database; filesystem }

let db t = t.database
let fs t = t.filesystem

let add_rule t ~file ~command =
  Db.with_txn t.database (fun () ->
      let id = Db.create_instance t.database "make_rule" in
      Db.set t.database id "file_name" (Value.Str file);
      Db.set t.database id "make_command" (Value.Str command);
      Db.set t.database id "fs_mtime" (time (Fs_sim.mod_time t.filesystem file));
      id)

let add_dependency t ~rule ~on = Db.link t.database ~from_id:rule ~rel:"depends_on" ~to_id:on

let file_of t id = Value.as_string (Db.get t.database ~watch:false id "file_name")
let command_of t id = Value.as_string (Db.get t.database ~watch:false id "make_command")

let sync t =
  List.iter
    (fun id -> Db.set t.database id "fs_mtime" (time (Fs_sim.mod_time t.filesystem (file_of t id))))
    (Db.instances_of_type t.database "make_rule")

let mod_time t id = Value.as_time (Db.get t.database id "mod_time")
let needs_rebuild t id = Value.as_bool (Db.get t.database id "needs_rebuild")

(* Figure 4's traversal: ensure dependencies first, then recreate this
   target if needed.  [visited] keeps shared dependencies to one visit
   per build invocation. *)
let rec ensure t visited ran id =
  if not (Hashtbl.mem visited id) then begin
    Hashtbl.add visited id ();
    List.iter (ensure t visited ran) (Db.related t.database id "depends_on");
    if needs_rebuild t id then begin
      let cmd = command_of t id in
      Fs_sim.run_command t.filesystem cmd;
      ran := cmd :: !ran;
      Db.set t.database id "fs_mtime" (time (Fs_sim.mod_time t.filesystem (file_of t id)))
    end
  end

let build t target =
  let visited = Hashtbl.create 16 in
  let ran = ref [] in
  ensure t visited ran target;
  List.rev !ran

let build_all t =
  let visited = Hashtbl.create 16 in
  let ran = ref [] in
  List.iter (ensure t visited ran) (Db.instances_of_type t.database "make_rule");
  List.rev !ran

(* Which rules would rebuild, and at what parallel stage: a rule rebuilds
   if it is stale itself or if anything it depends on rebuilds; its stage
   is one past the latest rebuilding dependency. *)
let build_plan t target =
  let stage : (int, int option) Hashtbl.t = Hashtbl.create 16 in
  (* stage = None: up to date; Some k: rebuilds in stage k *)
  let rec visit id =
    match Hashtbl.find_opt stage id with
    | Some s -> s
    | None ->
      Hashtbl.add stage id None (* cycle guard; make graphs are DAGs *);
      let dep_stages = List.map visit (Db.related t.database id "depends_on") in
      let dep_max =
        List.fold_left
          (fun acc s -> match s with Some k -> max acc (k + 1) | None -> acc)
          (-1) dep_stages
      in
      let s =
        if dep_max >= 0 then Some dep_max
        else if needs_rebuild t id then Some 0
        else None
      in
      Hashtbl.replace stage id s;
      s
  in
  ignore (visit target);
  let max_stage =
    Hashtbl.fold (fun _ s acc -> match s with Some k -> max acc k | None -> acc) stage (-1)
  in
  List.init (max_stage + 1) (fun k ->
      Hashtbl.fold
        (fun id s acc -> if s = Some k then (id, command_of t id) :: acc else acc)
        stage []
      |> List.sort compare
      |> List.map snd)

let enable_keep_current t rule = Db.set t.database rule "keep_current" (Value.Bool true)
let disable_keep_current t rule = Db.set t.database rule "keep_current" (Value.Bool false)

let auto_build t =
  sync t;
  let visited = Hashtbl.create 16 in
  let ran = ref [] in
  List.iter (ensure t visited ran) (Db.subtype_members t.database "keep_current_rule");
  List.rev !ran
