examples/versions_demo.ml: Cactis Cactis_apps List Printf String
