lib/core/explain.ml: Buffer Db Hashtbl Instance List Printf Schema Store String Value
