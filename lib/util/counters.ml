(* Counters are sharded per domain: [cell] hands out a cell private to
   the calling domain, so hot-path increments stay plain (non-atomic)
   [int ref] bumps with no cross-domain races — each cell has exactly
   one writer.  Readers ([get]/[snapshot]) merge the shards by summing
   per name.  In a single-domain program there is exactly one shard and
   every observable value is bit-identical to the unsharded
   implementation; the registry mutex is uncontended and costs a few
   nanoseconds per lookup (hot paths cache the cell anyway).

   A concurrent [snapshot] may observe another domain's cell mid-burst;
   int loads are word-sized so the read is some previously-written
   value, never torn.  Exact totals are guaranteed once the writing
   domains have been joined (the hammer test checks this). *)

type shard = (string, int ref) Hashtbl.t

type t = {
  mu : Mutex.t;
  mutable shards : (int * shard) list;  (* domain id -> shard; few domains *)
}

let create () : t = { mu = Mutex.create (); shards = [] }

let with_lock t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
    Mutex.unlock t.mu;
    v
  | exception e ->
    Mutex.unlock t.mu;
    raise e

(* The calling domain's shard, created on first use. *)
let shard t =
  let did = (Domain.self () :> int) in
  with_lock t (fun () ->
      match List.assoc_opt did t.shards with
      | Some s -> s
      | None ->
        let s : shard = Hashtbl.create 32 in
        t.shards <- (did, s) :: t.shards;
        s)

let cell t name =
  let s = shard t in
  match Hashtbl.find_opt s name with
  | Some r -> r
  | None ->
    (* Only the owning domain inserts into its shard, but [snapshot]
       iterates it from other domains; guard the structural change. *)
    with_lock t (fun () ->
        match Hashtbl.find_opt s name with
        | Some r -> r
        | None ->
          let r = ref 0 in
          Hashtbl.add s name r;
          r)

let incr t name = Stdlib.incr (cell t name)
let add t name n = cell t name := !(cell t name) + n

let fold_merged t f acc =
  with_lock t (fun () ->
      List.fold_left
        (fun acc (_, s) -> Hashtbl.fold (fun name r acc -> f acc name !r) s acc)
        acc t.shards)

let get t name =
  fold_merged t (fun acc n v -> if String.equal n name then acc + v else acc) 0

let reset t =
  (* Zeroes every cell of every shard in place, so cached refs stay
     valid (same contract as before sharding). *)
  with_lock t (fun () ->
      List.iter (fun (_, s) -> Hashtbl.iter (fun _ r -> r := 0) s) t.shards)

let snapshot t =
  let merged = Hashtbl.create 32 in
  fold_merged t
    (fun () name v ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt merged name) in
      Hashtbl.replace merged name (prev + v))
    ();
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  (* Union of both name sets: a counter present only in [before] (e.g.
     dropped by a reset between snapshots) reports its negative delta
     instead of silently disappearing. *)
  let deltas = Hashtbl.create 16 in
  List.iter (fun (name, v) -> Hashtbl.replace deltas name (-v)) before;
  List.iter
    (fun (name, v) ->
      let b = Option.value ~default:0 (Hashtbl.find_opt deltas name) in
      Hashtbl.replace deltas name (b + v))
    after;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) deltas []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp fmt t =
  let entries = snapshot t in
  Format.fprintf fmt "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf fmt "%s = %d@," name v) entries;
  Format.fprintf fmt "@]"
