(* Instance-to-block placement plus buffered access.

   Placement is a flat array (ids are small dense ints); each block also
   keeps its member list, which serves three needs: occupancy checks for
   slot reuse, the rendered block image for real-disk write-back, and
   bounded relocation during incremental re-clustering. *)

type t = {
  block_cap : int;
  disk_dev : Disk.t;
  buffer : Buffer_pool.t;
  (* Block of each instance id, -1 when unplaced.  Ids are small dense
     ints; a flat array keeps the per-touch placement lookup at one load
     on the hot path. *)
  mutable placement : int array;
  (* Members of each block (unsorted).  Bounded by block_cap. *)
  mutable members : int list array;
  (* Blocks with reclaimed spare slots, newest first.  [in_free] guards
     against duplicate entries. *)
  mutable free_blocks : int list;
  mutable in_free : bool array;
  mutable tail_block : int;
  mutable tail_used : int;
}

(* Block image: [u16 LE member count][u32 LE id]*, zero-padded to the
   device block size by [Disk.write_block].  Members are sorted so the
   image is a function of the logical block contents alone. *)
let render_block t block =
  let ids =
    if block < Array.length t.members then List.sort compare t.members.(block) else []
  in
  let b = Bytes.create (2 + (4 * List.length ids)) in
  Bytes.set_uint16_le b 0 (List.length ids);
  List.iteri (fun i id -> Bytes.set_int32_le b (2 + (4 * i)) (Int32.of_int id)) ids;
  b

let create ?(block_capacity = 8) ?(buffer_capacity = 64) ?disk_path ?disk_block_bytes () =
  if block_capacity < 1 then invalid_arg "Pager.create: block_capacity must be >= 1";
  (match (disk_path, disk_block_bytes) with
  | Some _, Some bytes when bytes < 2 + (4 * block_capacity) ->
    invalid_arg "Pager.create: block image exceeds disk block size"
  | _ -> ());
  let disk_dev = Disk.create ?path:disk_path ?block_bytes:disk_block_bytes () in
  let t =
    {
      block_cap = block_capacity;
      disk_dev;
      buffer = Buffer_pool.create ~capacity:buffer_capacity disk_dev;
      placement = Array.make 256 (-1);
      members = Array.make 64 [];
      free_blocks = [];
      in_free = Array.make 64 false;
      tail_block = 0;
      tail_used = 0;
    }
  in
  Buffer_pool.set_render t.buffer (render_block t);
  t

let ensure t id =
  let n = Array.length t.placement in
  if id >= n then begin
    let bigger = Array.make (max (id + 1) (2 * n)) (-1) in
    Array.blit t.placement 0 bigger 0 n;
    t.placement <- bigger
  end

let ensure_block t block =
  let n = Array.length t.members in
  if block >= n then begin
    let cap = max (block + 1) (2 * n) in
    let bigger = Array.make cap [] in
    Array.blit t.members 0 bigger 0 n;
    t.members <- bigger;
    let bigger_free = Array.make cap false in
    Array.blit t.in_free 0 bigger_free 0 n;
    t.in_free <- bigger_free
  end

let occupancy t block =
  if block < Array.length t.members then List.length t.members.(block) else 0

let place t id block =
  ensure t id;
  ensure_block t block;
  t.placement.(id) <- block;
  t.members.(block) <- id :: t.members.(block);
  Buffer_pool.mark_dirty t.buffer block

let unplace t id =
  let block = t.placement.(id) in
  if block >= 0 then begin
    t.placement.(id) <- -1;
    t.members.(block) <- List.filter (fun m -> m <> id) t.members.(block);
    Buffer_pool.mark_dirty t.buffer block
  end;
  block

(* Pop a reclaimed block that still has spare capacity; entries whose
   slack has been consumed in the meantime are skipped (lazy deletion,
   as in the clustering heaps). *)
let rec pop_free t =
  match t.free_blocks with
  | [] -> None
  | b :: rest ->
    t.free_blocks <- rest;
    t.in_free.(b) <- false;
    if occupancy t b < t.block_cap then Some b else pop_free t

let register t id =
  ensure t id;
  if t.placement.(id) < 0 then begin
    match pop_free t with
    | Some b ->
      place t id b;
      (* Still slack after this placement: keep the block reclaimable. *)
      if occupancy t b < t.block_cap then begin
        t.free_blocks <- b :: t.free_blocks;
        t.in_free.(b) <- true
      end
    | None ->
      if t.tail_used >= t.block_cap then begin
        t.tail_block <- t.tail_block + 1;
        t.tail_used <- 0
      end;
      place t id t.tail_block;
      t.tail_used <- t.tail_used + 1
  end

(* Freed slots are reclaimed immediately when cheap: a resident block
   costs no I/O to extend, and the tail block is where appends land
   anyway.  Cold blocks are left alone — re-opening one would charge a
   disk read just to place an instance — and their slack is recovered by
   the next re-clustering. *)
let forget t id =
  if id < Array.length t.placement && t.placement.(id) >= 0 then begin
    let block = unplace t id in
    if
      (not t.in_free.(block))
      && (Buffer_pool.resident t.buffer block || block = t.tail_block)
    then begin
      t.free_blocks <- block :: t.free_blocks;
      t.in_free.(block) <- true
    end
  end

let block_of t id =
  if id < Array.length t.placement && t.placement.(id) >= 0 then Some t.placement.(id) else None

let touch ?dirty t id =
  let block =
    if id < Array.length t.placement && t.placement.(id) >= 0 then t.placement.(id)
    else begin
      register t id;
      t.placement.(id)
    end
  in
  Buffer_pool.touch ?dirty t.buffer block

let mark_dirty t id =
  if id < Array.length t.placement && t.placement.(id) >= 0 then
    Buffer_pool.mark_dirty t.buffer t.placement.(id)

let resident t id =
  id < Array.length t.placement
  && t.placement.(id) >= 0
  && Buffer_pool.resident t.buffer t.placement.(id)

(* [relocate t id ~block] moves one instance, charging the buffered
   write access to both the old and the new block — the honest I/O cost
   of an incremental move (read either block if cold, write both back
   on eviction). *)
let relocate t id ~block =
  if id < Array.length t.placement && t.placement.(id) >= 0 then begin
    let old_block = t.placement.(id) in
    if old_block <> block then begin
      ignore (Buffer_pool.touch ~dirty:true t.buffer old_block);
      ignore (unplace t id);
      place t id block;
      ignore (Buffer_pool.touch ~dirty:true t.buffer block)
      (* The tail is deliberately left alone: the store reserves the
         whole target region via [advance_tail] when it cuts a plan, so
         appends during the migration land beyond it and plan moves stay
         the only writers of target blocks (capacity bound holds). *)
    end
  end

(* [advance_tail t block] makes future appends land at or beyond
   [block]; called when an incremental migration completes so new
   instances join the migrated region instead of the abandoned one. *)
let advance_tail t block =
  if block > t.tail_block then begin
    ensure_block t block;
    t.tail_block <- block;
    t.tail_used <- occupancy t block
  end

let apply_clustering t (assignment : Cluster.assignment) =
  (* The buffered images describe the old placement; they are stale by
     construction, so drop them without write-back. *)
  Buffer_pool.drop_all t.buffer;
  Array.fill t.placement 0 (Array.length t.placement) (-1);
  ensure_block t (max 0 (assignment.Cluster.block_count - 1));
  Array.fill t.members 0 (Array.length t.members) [];
  Array.fill t.in_free 0 (Array.length t.in_free) false;
  t.free_blocks <- [];
  Hashtbl.iter
    (fun id block ->
      ensure t id;
      ensure_block t block;
      t.placement.(id) <- block;
      t.members.(block) <- id :: t.members.(block))
    assignment.Cluster.block_of;
  (* New instances created after re-clustering go to fresh blocks. *)
  t.tail_block <- assignment.Cluster.block_count;
  t.tail_used <- 0;
  (* Materialize the reorganized database: on a real device every block
     image is rewritten in place and the file synced — the write cost of
     the paper's "periodic re-clustering", visible in the counters. *)
  if Disk.is_real t.disk_dev then begin
    for b = 0 to assignment.Cluster.block_count - 1 do
      Disk.write_block t.disk_dev b (render_block t b)
    done;
    Disk.sync t.disk_dev
  end

let disk t = t.disk_dev
let pool t = t.buffer
let block_capacity t = t.block_cap

let instances t =
  let acc = ref [] in
  Array.iteri (fun id b -> if b >= 0 then acc := id :: !acc) t.placement;
  !acc

(* Blocks currently holding at least one instance. *)
let blocks_in_use t =
  let n = ref 0 in
  Array.iter (fun ms -> if ms <> [] then incr n) t.members;
  !n

let members_of t block =
  if block < Array.length t.members then List.sort compare t.members.(block) else []

let reset_io t =
  (* Write-backs from the flush belong to the epoch being closed, so
     flush before zeroing the counters. *)
  Buffer_pool.flush t.buffer;
  Disk.reset t.disk_dev;
  Buffer_pool.reset_stats t.buffer

let sync t =
  Buffer_pool.flush t.buffer;
  Disk.sync t.disk_dev

let close t =
  Disk.close t.disk_dev
