(* Snapshot persistence and ad-hoc query tests. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Errors = Cactis.Errors
module Snapshot = Cactis.Snapshot
module Codec = Cactis.Codec
module Query = Cactis_ddl.Query
module Elaborate = Cactis_ddl.Elaborate

let milestone_src =
  {|
  object class milestone is
    relationships
      depends_on  : milestone multi socket inverse consists_of;
      consists_of : milestone multi plug   inverse depends_on;
    attributes
      name        : string;
      sched_compl : time  := time(10);
      local_work  : float := 1.0;
    rules
      exp_compl = max(depends_on.exp_compl default time(0)) + local_work;
      late      = later_than(exp_compl, sched_compl);
  end object;
|}

let build () =
  let sch = Elaborate.load_string milestone_src in
  let db = Db.create sch in
  let add name work =
    Db.with_txn db (fun () ->
        let id = Db.create_instance db "milestone" in
        Db.set db id "name" (Value.Str name);
        Db.set db id "local_work" (Value.Float work);
        id)
  in
  let a = add "a" 5.0 in
  let b = add "b" 12.0 in
  let c = add "c" 2.0 in
  Db.link db ~from_id:b ~rel:"depends_on" ~to_id:a;
  Db.link db ~from_id:c ~rel:"depends_on" ~to_id:b;
  (db, a, b, c)

(* ---- snapshot ---- *)

let full_state db =
  Db.instance_ids db
  |> List.map (fun id ->
         ( id,
           Value.to_string (Db.get db ~watch:false id "name"),
           Value.to_string (Db.get db ~watch:false id "local_work"),
           Value.to_string (Db.get db ~watch:false id "exp_compl"),
           List.sort compare (Db.related db id "depends_on"),
           List.sort compare (Db.related db id "consists_of") ))

let test_snapshot_roundtrip () =
  let db, _, _, _ = build () in
  let text = Snapshot.save db in
  let db2 = Snapshot.load (Db.schema db) text in
  Alcotest.(check bool) "identical state" true (full_state db = full_state db2)

let test_snapshot_rederives () =
  let db, a, _, c = build () in
  let expected = Value.to_string (Db.get db c "exp_compl") in
  let db2 = Snapshot.load (Db.schema db) (Snapshot.save db) in
  Alcotest.(check string) "derived value rebuilt from intrinsics" expected
    (Value.to_string (Db.get db2 c "exp_compl"));
  (* And stays incremental after load. *)
  Db.set db2 a "local_work" (Value.Float 50.0);
  Alcotest.(check string) "ripples after load" "day 64.00"
    (Value.to_string (Db.get db2 c "exp_compl"))

let test_snapshot_no_derived_lines () =
  let db, _, _, _ = build () in
  let text = Snapshot.save db in
  Alcotest.(check bool) "no derived attrs stored" false
    (List.exists
       (fun l ->
         match String.split_on_char ' ' l with
         | [ "attr"; _; a; _ ] -> a = "exp_compl" || a = "late"
         | _ -> false)
       (String.split_on_char '\n' text))

let test_snapshot_bad_input () =
  let db, _, _, _ = build () in
  let sch = Db.schema db in
  let expect_fail label text =
    match Snapshot.load sch text with
    | _ -> Alcotest.fail ("expected failure: " ^ label)
    | exception (Snapshot.Parse_error _ | Errors.Unknown _ | Errors.Type_error _) -> ()
  in
  expect_fail "missing header" "instance 1 milestone\n";
  expect_fail "derived attr" "cactis-snapshot 1\ninstance 1 milestone\nattr 1 late true\n";
  expect_fail "unknown type" "cactis-snapshot 1\ninstance 1 nothing\n";
  expect_fail "bad directive" "cactis-snapshot 1\nfrobnicate 12\n"

let value_gen =
  let open QCheck.Gen in
  let scalar =
    oneof
      [
        return Value.Null;
        map (fun b -> Value.Bool b) bool;
        map (fun n -> Value.Int n) int;
        map (fun f -> Value.Float f) (float_range (-1e6) 1e6);
        return (Value.Float infinity);
        return (Value.Float neg_infinity);
        return (Value.Float nan);
        return (Value.Float (-0.0));
        map (fun s -> Value.Str s) (string_size ~gen:printable (int_range 0 12));
        (* Arbitrary bytes: NULs, newlines, quotes, backslashes. *)
        map (fun s -> Value.Str s) (string_size ~gen:char (int_range 0 24));
        return (Value.Str "a\000b\nc\"d\\e");
        map (fun f -> Value.Time (Cactis_util.Vtime.of_days f)) (float_range 0.0 1000.0);
        return (Value.Time Cactis_util.Vtime.far_future);
      ]
  in
  let rec value n =
    if n <= 0 then scalar
    else
      oneof
        [
          scalar;
          map (fun l -> Value.Arr (Array.of_list l)) (list_size (int_range 0 4) (value (n - 1)));
          map
            (fun l -> Value.Rec (List.mapi (fun i v -> (Printf.sprintf "f%d" i, v)) l))
            (list_size (int_range 0 4) (value (n - 1)));
        ]
  in
  value 3

let prop_value_roundtrip =
  QCheck.Test.make ~name:"snapshot value encoding round-trips" ~count:500
    (QCheck.make ~print:Value.to_string value_gen)
    (fun v -> Value.equal (Snapshot.value_of_string (Snapshot.value_to_string v)) v)

let prop_binary_value_roundtrip =
  QCheck.Test.make ~name:"binary value codec round-trips" ~count:500
    (QCheck.make ~print:Value.to_string value_gen)
    (fun v -> Value.equal (Codec.value_of_string (Codec.value_to_string v)) v)

(* ---- binary snapshots ---- *)

let test_binary_roundtrip () =
  let db, _, _, _ = build () in
  let bin = Snapshot.save_binary db in
  Alcotest.(check bool) "binary magic detected" true (Snapshot.is_binary bin);
  Alcotest.(check bool) "text not mistaken for binary" false
    (Snapshot.is_binary (Snapshot.save db));
  let db2 = Snapshot.load_binary (Db.schema db) bin in
  Alcotest.(check bool) "identical state" true (full_state db = full_state db2);
  Alcotest.(check bool) "re-save is byte-identical" true
    (String.equal bin (Snapshot.save_binary db2))

let test_binary_special_values () =
  (* NaN, infinities and raw-byte strings survive a database-level
     binary round-trip exactly. *)
  let sch = Schema.create () in
  Schema.add_type sch "blob";
  Schema.add_attr sch ~type_name:"blob" (Rule.intrinsic "s" (Value.Str ""));
  Schema.add_attr sch ~type_name:"blob" (Rule.intrinsic "f" (Value.Float 0.0));
  let db = Db.create sch in
  let mk s f =
    Db.with_txn db (fun () ->
        let id = Db.create_instance db "blob" in
        Db.set db id "s" (Value.Str s);
        Db.set db id "f" (Value.Float f);
        id)
  in
  let a = mk "nul\000embedded\nnewline\"quote\\backslash" nan in
  let b = mk (String.init 256 Char.chr) neg_infinity in
  let db2 = Snapshot.load_binary sch (Snapshot.save_binary db) in
  List.iter
    (fun (id, attr) ->
      Alcotest.(check bool)
        (Printf.sprintf "instance %d %s preserved" id attr)
        true
        (Value.equal (Db.get db ~watch:false id attr) (Db.get db2 ~watch:false id attr)))
    [ (a, "s"); (a, "f"); (b, "s"); (b, "f") ]

let test_binary_agrees_with_text () =
  (* On random databases the two codecs load identical states: compare
     through the canonical binary re-encoding of each loaded copy. *)
  let rng = Cactis_util.Rng.create 7 in
  for _ = 1 to 10 do
    let db, _, _, _ = build () in
    for _ = 1 to 20 do
      let ids = Array.of_list (Db.instance_ids db) in
      let pick () = ids.(Cactis_util.Rng.int rng (Array.length ids)) in
      match Cactis_util.Rng.int rng 3 with
      | 0 ->
        Db.with_txn db (fun () ->
            let id = Db.create_instance db "milestone" in
            Db.set db id "name"
              (Value.Str (Printf.sprintf "m%d" (Cactis_util.Rng.int rng 1000)));
            Db.set db id "local_work" (Value.Float (Cactis_util.Rng.float rng 20.0)))
      | 1 ->
        Db.set db (pick ()) "local_work" (Value.Float (Cactis_util.Rng.float rng 20.0))
      | _ ->
        let a = pick () and b = pick () in
        if a <> b && not (List.mem b (Db.related db a "depends_on")) then
          Db.link db ~from_id:a ~rel:"depends_on" ~to_id:b
    done;
    let from_text = Snapshot.load (Db.schema db) (Snapshot.save db) in
    let from_bin = Snapshot.load_binary (Db.schema db) (Snapshot.save_binary db) in
    let canon d = Snapshot.save_binary d in
    Alcotest.(check bool) "text and binary loads agree" true
      (String.equal (canon from_text) (canon from_bin));
    Alcotest.(check bool) "binary load matches source" true
      (String.equal (canon db) (canon from_bin))
  done

let test_binary_bad_input () =
  let db, _, _, _ = build () in
  let sch = Db.schema db in
  let bin = Snapshot.save_binary db in
  let expect_fail label data =
    match Snapshot.load_binary sch data with
    | _ -> Alcotest.fail ("expected failure: " ^ label)
    | exception (Snapshot.Parse_error _ | Codec.Error _ | Errors.Unknown _ | Errors.Type_error _)
      -> ()
  in
  expect_fail "bad magic" ("XACTISB1" ^ String.sub bin 8 (String.length bin - 8));
  expect_fail "truncated mid-stream" (String.sub bin 0 (String.length bin - 3));
  expect_fail "trailing garbage" (bin ^ "\x07");
  (* Corrupting any single byte of the body must raise, never load a
     wrong database silently... except where the byte is genuinely
     redundant; here we spot-check a few offsets. *)
  List.iter
    (fun off ->
      let mutated = Bytes.of_string bin in
      Bytes.set mutated off (Char.chr (Char.code (Bytes.get mutated off) lxor 0xff));
      match Snapshot.load_binary sch (Bytes.to_string mutated) with
      | _ -> ()
      | exception (Snapshot.Parse_error _ | Codec.Error _ | Errors.Unknown _
                  | Errors.Type_error _ | Errors.Cardinality _) -> ())
    [ 0; 8; 12; String.length bin - 1 ]

let test_binary_error_offsets () =
  (* Codec errors carry the byte offset; the text codec's value errors
     carry it too (the fail_at fix). *)
  let contains s sub =
    let n = String.length sub in
    let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  (match Codec.value_of_string "\x05" with
  | _ -> Alcotest.fail "expected Codec.Error"
  | exception Codec.Error { offset; _ } -> Alcotest.(check int) "offset reported" 1 offset);
  match Snapshot.value_of_string "a:[null," with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m ->
    Alcotest.(check bool) "byte offset in message" true (contains m "at byte")

let test_snapshot_array_values () =
  (* Array-valued intrinsics (the flow-analysis database) survive the
     save/load cycle at database level. *)
  let module F = Cactis_apps.Flowan in
  let p =
    F.Seq
      ( F.Assign { target = "x"; uses = [ "input" ]; label = "X" },
        F.Assign { target = "y"; uses = [ "x" ]; label = "Y" } )
  in
  let t = F.analyze ~exit_live:[ "y" ] p in
  let db = F.db t in
  let before =
    List.map (fun n -> (n, F.live_in t n, F.reaching_in t n)) (F.nodes t)
  in
  let db2 = Snapshot.load (Db.schema db) (Snapshot.save db) in
  List.iter
    (fun (n, live, reach) ->
      let live2 =
        Value.as_array (Db.get db2 n "live_in") |> Array.to_list |> List.map Value.as_string
      in
      let reach2 =
        Value.as_array (Db.get db2 n "reach_in") |> Array.to_list |> List.map Value.as_string
      in
      Alcotest.(check (list string)) "liveness preserved" live live2;
      Alcotest.(check (list string)) "reaching preserved" reach reach2)
    before

(* ---- query ---- *)

let test_query_select () =
  let db, a, b, c = build () in
  Alcotest.(check (list int)) "heavy work" [ b ]
    (Query.select db ~type_name:"milestone" ~where:"local_work > 10.0");
  Alcotest.(check (list int)) "late ones" [ b; c ]
    (Query.select db ~type_name:"milestone" ~where:"late");
  Alcotest.(check (list int)) "by name" [ a ]
    (Query.select db ~type_name:"milestone" ~where:"name = \"a\"");
  Alcotest.(check (list int)) "rel aggregate" [ a ]
    (Query.select db ~type_name:"milestone" ~where:"count(consists_of.name) > 0 and local_work < 10.0")

let test_query_eval_and_aggregate () =
  let db, _, b, _ = build () in
  Alcotest.(check string) "eval arith" "24"
    (Value.to_string (Query.eval db b "local_work * 2"));
  let total =
    Query.aggregate db ~type_name:"milestone" ~expr:"local_work"
      ~f:(fun acc v -> acc +. Value.as_float v)
      ~init:0.0
  in
  Alcotest.(check (float 1e-9)) "aggregate sum" 19.0 total

let test_query_errors () =
  let db, _, _, _ = build () in
  (match Query.select db ~type_name:"milestone" ~where:"local_work +" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Query.Error _ -> ());
  match Query.select db ~type_name:"milestone" ~where:"local_work + 1.0" with
  | _ -> Alcotest.fail "expected boolean error"
  | exception Query.Error _ -> ()

let test_query_does_not_watch () =
  let db, a, _, _ = build () in
  ignore (Query.select db ~type_name:"milestone" ~where:"late");
  (* A query must not make attributes permanently important: a subsequent
     change should not trigger re-evaluation at commit. *)
  let c = Db.counters db in
  let before = Cactis_util.Counters.get c "rule_evals" in
  Db.set db a "local_work" (Value.Float 30.0);
  Alcotest.(check int) "no eager evals after ad-hoc query" before
    (Cactis_util.Counters.get c "rule_evals")

let () =
  Alcotest.run "cactis-persist"
    [
      ( "snapshot",
        [
          Alcotest.test_case "round-trip" `Quick test_snapshot_roundtrip;
          Alcotest.test_case "re-derives" `Quick test_snapshot_rederives;
          Alcotest.test_case "intrinsics only" `Quick test_snapshot_no_derived_lines;
          Alcotest.test_case "bad input rejected" `Quick test_snapshot_bad_input;
          Alcotest.test_case "array values (flow db)" `Quick test_snapshot_array_values;
          QCheck_alcotest.to_alcotest prop_value_roundtrip;
        ] );
      ( "binary snapshot",
        [
          Alcotest.test_case "round-trip" `Quick test_binary_roundtrip;
          Alcotest.test_case "NaN/inf/raw bytes" `Quick test_binary_special_values;
          Alcotest.test_case "agrees with text codec" `Quick test_binary_agrees_with_text;
          Alcotest.test_case "bad input rejected" `Quick test_binary_bad_input;
          Alcotest.test_case "error offsets" `Quick test_binary_error_offsets;
          QCheck_alcotest.to_alcotest prop_binary_value_roundtrip;
        ] );
      ( "query",
        [
          Alcotest.test_case "select" `Quick test_query_select;
          Alcotest.test_case "eval + aggregate" `Quick test_query_eval_and_aggregate;
          Alcotest.test_case "errors" `Quick test_query_errors;
          Alcotest.test_case "no importance leak" `Quick test_query_does_not_watch;
        ] );
    ]
