(* Workload generators for the experiment harness.  Every generator is
   deterministic (seeded Rng where randomness is involved) so the tables
   in EXPERIMENTS.md are reproducible. *)

module Value = Cactis.Value
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Db = Cactis.Db
module Engine = Cactis.Engine
module Sched = Cactis.Sched
module Rng = Cactis_util.Rng

let int n = Value.Int n

(* The standard node class: intrinsic [local]; derived
   [total] = local + sum over deps' totals. *)
let node_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "local" (int 1));
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "total"
       (Rule.combine_self_rel "local" "deps" "total" ~f:(fun own totals ->
            Value.add own (Value.sum totals))));
  sch

let make_db ?strategy ?sched ?block_capacity ?buffer_capacity () =
  Db.create ?strategy ?sched ?block_capacity ?buffer_capacity (node_schema ())

(* Chain: node i depends on node i+1; returns ids head..tail. *)
let chain db n =
  let ids = Array.init n (fun _ -> Db.create_instance db "node") in
  for i = 0 to n - 2 do
    Db.link db ~from_id:ids.(i) ~rel:"deps" ~to_id:ids.(i + 1)
  done;
  ids

(* Diamond ladder of depth d: t_i depends on m1_i and m2_i, both of which
   depend on t_{i+1}.  A naive eager trigger fires the subtree below each
   diamond twice -> 2^d rule executions; the two-phase algorithm touches
   each attribute once.  Returns (top, bottom). *)
let diamond_ladder db d =
  let bottom = Db.create_instance db "node" in
  let rec build depth lower =
    if depth = 0 then lower
    else begin
      let m1 = Db.create_instance db "node" in
      let m2 = Db.create_instance db "node" in
      let top = Db.create_instance db "node" in
      Db.link db ~from_id:m1 ~rel:"deps" ~to_id:lower;
      Db.link db ~from_id:m2 ~rel:"deps" ~to_id:lower;
      Db.link db ~from_id:top ~rel:"deps" ~to_id:m1;
      Db.link db ~from_id:top ~rel:"deps" ~to_id:m2;
      build (depth - 1) top
    end
  in
  let top = build d bottom in
  (top, bottom)

(* Star: [fan] nodes each depending on one hub.  A hub change affects
   every point; laziness means only watched points are re-evaluated. *)
let star db fan =
  let hub = Db.create_instance db "node" in
  let points = Array.init fan (fun _ -> Db.create_instance db "node") in
  Array.iter (fun p -> Db.link db ~from_id:p ~rel:"deps" ~to_id:hub) points;
  (hub, points)

(* Balanced tree of the given depth/fanout; parents depend on children.
   Returns (root, leaves). *)
let tree db ~depth ~fanout =
  let leaves = ref [] in
  let rec build d =
    let id = Db.create_instance db "node" in
    if d = 0 then leaves := id :: !leaves
    else
      for _ = 1 to fanout do
        let child = build (d - 1) in
        Db.link db ~from_id:id ~rel:"deps" ~to_id:child
      done;
    id
  in
  let root = build depth in
  (root, Array.of_list !leaves)

(* Random DAG over n nodes: node i may depend on up to [max_deps] nodes
   with larger index (no cycles).  Returns the id array. *)
let random_dag db rng n ~max_deps =
  let ids = Array.init n (fun _ -> Db.create_instance db "node") in
  for i = 0 to n - 2 do
    let deps = Rng.int rng (max_deps + 1) in
    for _ = 1 to deps do
      let j = Rng.int_in rng (i + 1) (n - 1) in
      if not (List.mem ids.(j) (Db.related db ids.(i) "deps")) then
        Db.link db ~from_id:ids.(i) ~rel:"deps" ~to_id:ids.(j)
    done
  done;
  ids

(* K separate chains of length L, plus one root depending on every
   chain's head.  Chains are created contiguously so each lives in its
   own range of blocks: a breadth-first (FIFO) evaluation order cycles
   across all K block ranges, while the greedy scheduler drains
   same-block work first. *)
let comb db ~chains ~length =
  let heads =
    Array.init chains (fun _ ->
        let ids = chain db length in
        ids.(0))
  in
  let root = Db.create_instance db "node" in
  Array.iter (fun h -> Db.link db ~from_id:root ~rel:"deps" ~to_id:h) heads;
  root

(* Inverted comb: K chains whose tails all depend on one shared node, so
   a single change to the shared node's intrinsic marks out-of-date
   attributes up every chain in one traversal.  Exercises the marking
   phase's scheduling (binary worst-case costs, where block promotion is
   the discriminating mechanism).  Returns (shared, chain heads). *)
let inverted_comb db ~chains ~length =
  let shared = Db.create_instance db "node" in
  let heads =
    Array.init chains (fun _ ->
        let ids = chain db length in
        Db.link db ~from_id:ids.(length - 1) ~rel:"deps" ~to_id:shared;
        ids.(0))
  in
  (shared, heads)

(* ------------------------------------------------------------------ *)
(* Persistence workloads (E14)                                         *)

(* Document class with mixed-type intrinsics (strings, ints, floats) so
   the snapshot codecs face realistic payloads, plus a derived summary
   attribute proving snapshots stay intrinsics-only. *)
let doc_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "doc";
  Schema.declare_relationship sch ~from_type:"doc" ~rel:"refs" ~to_type:"doc" ~inverse:"cited_by"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"doc" (Rule.intrinsic "name" (Value.Str ""));
  Schema.add_attr sch ~type_name:"doc" (Rule.intrinsic "body" (Value.Str ""));
  Schema.add_attr sch ~type_name:"doc" (Rule.intrinsic "size" (int 0));
  Schema.add_attr sch ~type_name:"doc" (Rule.intrinsic "weight" (Value.Float 0.0));
  Schema.add_attr sch ~type_name:"doc"
    (Rule.derived "cited_weight" (Rule.sum_rel "cited_by" "size"));
  sch

let make_doc_db () = Db.create (doc_schema ())

(* Module-sized text payloads (the paper's documents are source modules,
   not one-liners); mixed printable chars including quotes/backslashes so
   the text codec pays its real escaping cost. *)
let random_body rng =
  String.init (256 + Rng.int rng 512) (fun _ -> Char.chr (32 + Rng.int rng 95))

(* Populate [n] documents (batched transactions) with a chain plus a
   random extra reference per ~2 docs; returns the id array. *)
let docs db ~n ~rng =
  let ids = Array.make n 0 in
  let i = ref 0 in
  while !i < n do
    Db.begin_txn db;
    let stop = min n (!i + 500) in
    while !i < stop do
      let id = Db.create_instance db "doc" in
      Db.set db id "name" (Value.Str (Printf.sprintf "doc-%06d" !i));
      Db.set db id "body" (Value.Str (random_body rng));
      Db.set db id "size" (int (Rng.int rng 100_000));
      Db.set db id "weight" (Value.Float (Rng.float rng 1.0));
      ids.(!i) <- id;
      incr i
    done;
    Db.commit db
  done;
  let j = ref 1 in
  while !j < n do
    Db.begin_txn db;
    let stop = min n (!j + 500) in
    while !j < stop do
      Db.link db ~from_id:ids.(!j) ~rel:"refs" ~to_id:ids.(!j - 1);
      if Rng.chance rng 0.5 then begin
        let other = Rng.int rng !j in
        if other <> !j - 1 then Db.link db ~from_id:ids.(!j) ~rel:"refs" ~to_id:ids.(other)
      end;
      incr j
    done;
    Db.commit db
  done;
  ids

(* One editing transaction touching [ops] random documents. *)
let doc_edit_txn db ids ~ops ~rng =
  Db.with_txn db (fun () ->
      for _ = 1 to ops do
        let id = ids.(Rng.int rng (Array.length ids)) in
        match Rng.int rng 3 with
        | 0 -> Db.set db id "size" (int (Rng.int rng 100_000))
        | 1 -> Db.set db id "weight" (Value.Float (Rng.float rng 1.0))
        | _ -> Db.set db id "body" (Value.Str (random_body rng))
      done)

(* ------------------------------------------------------------------ *)
(* OCB-style synthetic workload (E16)

   After Darmont, Petit & Schneider's Object Clustering Benchmark: a
   random object base whose objects carry a payload and reference a few
   other objects, exercised by stochastic depth-first traversals from
   Zipf-distributed roots.  Traversals build genuine usage locality (hot
   paths through an otherwise scattered graph), which is exactly what
   the clustering strategies compete on.  All randomness is seeded, so
   replaying a trace after re-clustering traverses the same edges. *)

(* Objects are all intrinsic (payload only): OCB graphs are arbitrary
   digraphs, and derived attributes over a cyclic reference graph would
   trip the evaluator's cycle check. *)
let ocb_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "obj";
  Schema.declare_relationship sch ~from_type:"obj" ~rel:"refs" ~to_type:"obj" ~inverse:"rrefs"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"obj" (Rule.intrinsic "payload" (int 0));
  sch

let make_ocb_db ?block_capacity ?buffer_capacity ?disk_path ?disk_block_bytes () =
  Db.create ?block_capacity ?buffer_capacity ?disk_path ?disk_block_bytes (ocb_schema ())

(* Populate [objects] instances, each referencing [fanout] distinct
   others (self-references skipped).  Per OCB's reference-locality
   model, references mostly stay inside the object's {e module} — a
   random group of [module_size] objects (membership is a shuffled
   permutation, so modules are invisible to the sequential id-order
   layout) — with a [1 - locality] chance of escaping to a uniformly
   random object.  Batched transactions keep the version-history deltas
   reasonably sized. *)
let ocb_populate ?(module_size = 64) ?(locality = 0.9) db rng ~objects ~fanout =
  let ids = Array.make objects 0 in
  let i = ref 0 in
  while !i < objects do
    Db.begin_txn db;
    let stop = min objects (!i + 500) in
    while !i < stop do
      let id = Db.create_instance db "obj" in
      Db.set db id "payload" (int !i);
      ids.(!i) <- id;
      incr i
    done;
    Db.commit db
  done;
  (* module_of.(j) = position of object j in a shuffled permutation;
     objects sharing position / module_size are module-mates. *)
  let perm = Array.init objects (fun k -> k) in
  Rng.shuffle rng perm;
  let inv = Array.make objects 0 in
  Array.iteri (fun pos k -> inv.(k) <- pos) perm;
  let pick_target j =
    if Rng.chance rng locality then begin
      let base = inv.(j) / module_size * module_size in
      let span = min module_size (objects - base) in
      perm.(base + Rng.int rng span)
    end
    else Rng.int rng objects
  in
  let j = ref 0 in
  while !j < objects do
    Db.begin_txn db;
    let stop = min objects (!j + 500) in
    while !j < stop do
      for _ = 1 to fanout do
        let other = pick_target !j in
        if
          other <> !j
          && not (List.mem ids.(other) (Db.related db ids.(!j) "refs"))
        then Db.link db ~from_id:ids.(!j) ~rel:"refs" ~to_id:ids.(other)
      done;
      incr j
    done;
    Db.commit db
  done;
  ids

(* One hierarchy traversal (OCB's deterministic depth-first): read the
   payload, then recurse into {e all} of the object's references,
   [depth] levels deep.  A given root always touches the same subgraph,
   so repeated traversals of hot roots build exactly the usage locality
   a clustering strategy can exploit. *)
let rec ocb_descend db id ~depth =
  ignore (Db.get db id "payload");
  if depth > 0 then
    List.iter (fun r -> ocb_descend db r ~depth:(depth - 1)) (Db.related db id "refs")

(* [ocb_traversals db rng ids ~rounds ~depth] runs [rounds] hierarchy
   traversals whose roots are Zipf-distributed over the object base — a
   hot head of popular roots and a long cold tail, per OCB. *)
let ocb_traversals db rng ids ~rounds ~depth =
  let n = Array.length ids in
  for _ = 1 to rounds do
    ocb_descend db ids.(Rng.zipf rng n 1.1) ~depth
  done

(* Commit-heavy edit workload over the object base: [txns] transactions
   of [ops] payload updates each, targets Zipf-skewed.  Used to measure
   commit-latency disruption from incremental re-clustering
   maintenance. *)
let ocb_edit_txns db rng ids ~txns ~ops =
  let n = Array.length ids in
  for v = 1 to txns do
    Db.with_txn db (fun () ->
        for _ = 1 to ops do
          Db.set db ids.(Rng.zipf rng n 0.9) "payload" (int v)
        done)
  done

(* Community graph for the clustering experiment: [communities] groups of
   [size] members; each member's [total] depends on the next member in
   its community (ring), so evaluating one community touches all its
   members.  Instances are created in an interleaved order, so the
   initial sequential layout scatters every community across blocks; the
   usage-driven re-clustering should regroup them.  Returns the array of
   communities (each an id array). *)
let community_graph ?shuffle db ~communities ~size =
  (* Interleaved creation: community c gets every c-th instance, so a
     sequential (creation-order) layout scatters every community.  With
     [shuffle], membership is a random permutation instead, so no
     modular placement can accidentally align with it. *)
  let all = Array.init (communities * size) (fun _ -> Db.create_instance db "node") in
  (match shuffle with Some rng -> Rng.shuffle rng all | None -> ());
  let groups =
    Array.init communities (fun c -> Array.init size (fun k -> all.((k * communities) + c)))
  in
  Array.iter
    (fun group ->
      let n = Array.length group in
      for k = 0 to n - 1 do
        if k < n - 1 then Db.link db ~from_id:group.(k) ~rel:"deps" ~to_id:group.(k + 1)
      done)
    groups;
  groups
