(* OpenMetrics text exposition: rendering (for the server's /metrics
   endpoint and the Metrics proto verb) and a structural linter (for
   tests and CI to validate a real scrape without network deps). *)

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let metric_name n = "cactis_" ^ String.map (fun c -> if is_name_char c then c else '_') n

(* %.9g keeps every bucket bound and sum exact enough to round-trip
   (bounds are powers of two times 1e-6) while staying deterministic. *)
let float_repr f = Printf.sprintf "%.9g" f

let render ~counters ~hists =
  let buf = Buffer.create 4096 in
  (* Counters whose sanitized names collide are summed into one sample. *)
  let ctr_tbl = Hashtbl.create 64 in
  List.iter
    (fun (name, v) ->
      let m = metric_name name in
      Hashtbl.replace ctr_tbl m (v + Option.value ~default:0 (Hashtbl.find_opt ctr_tbl m)))
    counters;
  let ctrs =
    Hashtbl.fold (fun m v acc -> (m, v) :: acc) ctr_tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (m, v) ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" m);
      Buffer.add_string buf (Printf.sprintf "%s_total %d\n" m v))
    ctrs;
  let seen_hist = Hashtbl.create 16 in
  let hists =
    List.filter_map
      (fun (name, h) ->
        let m = metric_name name ^ "_seconds" in
        if Hashtbl.mem seen_hist m then None
        else begin
          Hashtbl.add seen_hist m ();
          Some (m, h)
        end)
      hists
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (m, h) ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" m);
      let counts = Histogram.bucket_counts h in
      let cum = ref 0 in
      Array.iteri
        (fun i c ->
          cum := !cum + c;
          (* Only buckets that gained observations — cumulative values
             stay valid over any subset of bounds, and 64 mostly-empty
             lines per histogram would drown the scrape. *)
          if c > 0 then
            Buffer.add_string buf
              (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" m
                 (float_repr (Histogram.bucket_upper i))
                 !cum))
        counts;
      Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" m (Histogram.count h));
      Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" m (float_repr (Histogram.sum h)));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" m (Histogram.count h)))
    hists;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Linter                                                              *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

let parse_value s =
  match s with
  | "+Inf" | "Inf" -> Some infinity
  | "-Inf" -> Some neg_infinity
  | "NaN" -> Some Float.nan
  | _ -> float_of_string_opt s

(* [name{label="v",...} value [timestamp]] — returns None with a reason
   on malformed lines. *)
let parse_sample line =
  let len = String.length line in
  let pos = ref 0 in
  let fail msg = Error msg in
  if len = 0 || not (is_name_start line.[0]) then fail "sample does not start with a metric name"
  else begin
    while !pos < len && is_name_char line.[!pos] do
      incr pos
    done;
    let name = String.sub line 0 !pos in
    let labels = ref [] in
    let label_err = ref None in
    if !pos < len && line.[!pos] = '{' then begin
      incr pos;
      let rec loop () =
        if !pos >= len then label_err := Some "unterminated label set"
        else if line.[!pos] = '}' then incr pos
        else begin
          let start = !pos in
          while !pos < len && is_name_char line.[!pos] do
            incr pos
          done;
          let lname = String.sub line start (!pos - start) in
          if lname = "" || !pos + 1 >= len || line.[!pos] <> '=' || line.[!pos + 1] <> '"' then
            label_err := Some "malformed label"
          else begin
            pos := !pos + 2;
            let b = Buffer.create 16 in
            let rec scan () =
              if !pos >= len then label_err := Some "unterminated label value"
              else
                match line.[!pos] with
                | '"' -> incr pos
                | '\\' when !pos + 1 < len ->
                  Buffer.add_char b line.[!pos + 1];
                  pos := !pos + 2;
                  scan ()
                | c ->
                  Buffer.add_char b c;
                  incr pos;
                  scan ()
            in
            scan ();
            if !label_err = None then begin
              labels := (lname, Buffer.contents b) :: !labels;
              if !pos < len && line.[!pos] = ',' then begin
                incr pos;
                loop ()
              end
              else loop ()
            end
          end
        end
      in
      loop ()
    end;
    match !label_err with
    | Some msg -> fail msg
    | None ->
      if !pos >= len || line.[!pos] <> ' ' then fail "missing space before sample value"
      else begin
        let rest = String.sub line (!pos + 1) (len - !pos - 1) in
        let value_str, _ts =
          match String.index_opt rest ' ' with
          | Some i -> (String.sub rest 0 i, Some (String.sub rest (i + 1) (String.length rest - i - 1)))
          | None -> (rest, None)
        in
        match parse_value value_str with
        | None -> fail (Printf.sprintf "unparseable sample value %S" value_str)
        | Some v -> Ok { s_name = name; s_labels = List.rev !labels; s_value = v }
      end
  end

let known_types = [ "counter"; "gauge"; "histogram"; "gaugehistogram"; "summary"; "info"; "stateset"; "unknown" ]

(* Suffixes a sample name may carry, per family type. *)
let family_of types name =
  let try_family f = Hashtbl.find_opt types f |> Option.map (fun ty -> (f, ty)) in
  let strip suffix =
    if String.length name > String.length suffix && Filename.check_suffix name suffix then
      Some (String.sub name 0 (String.length name - String.length suffix))
    else None
  in
  let candidates =
    name
    :: List.filter_map strip [ "_total"; "_created"; "_bucket"; "_sum"; "_count"; "_info" ]
  in
  let rec first = function
    | [] -> None
    | f :: rest -> ( match try_family f with Some r -> Some r | None -> first rest)
  in
  first candidates

let suffix_allowed ty family name =
  let suffix =
    if name = family then ""
    else String.sub name (String.length family) (String.length name - String.length family)
  in
  match ty with
  | "counter" -> List.mem suffix [ "_total"; "_created" ]
  | "histogram" -> List.mem suffix [ "_bucket"; "_sum"; "_count"; "_created" ]
  | "gaugehistogram" -> List.mem suffix [ "_bucket"; "_gsum"; "_gcount" ]
  | "summary" -> List.mem suffix [ ""; "_sum"; "_count"; "_created" ]
  | "info" -> suffix = "_info"
  | _ -> suffix = ""

let lint text =
  let errors = ref [] in
  let err line msg = errors := Printf.sprintf "line %d: %s" line msg :: !errors in
  if text = "" then [ "empty exposition" ]
  else begin
    if not (Filename.check_suffix text "\n") then errors := "missing final newline" :: !errors;
    let lines = String.split_on_char '\n' text in
    (* split_on_char leaves one trailing "" for a newline-terminated text *)
    let lines =
      match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
    in
    let types = Hashtbl.create 16 in
    let sampled = Hashtbl.create 16 in  (* families that have emitted samples *)
    let completed = Hashtbl.create 16 in  (* families whose sample run ended *)
    let current = ref None in
    (* per-histogram-family accumulation: (le, cumulative value) list,
       count sample value *)
    let hbuckets = ref [] in
    let hcount = ref None in
    let finalize line =
      (match !current with
      | Some (f, "histogram") ->
        let bs = List.rev !hbuckets in
        if bs = [] then err line (Printf.sprintf "histogram %s has no buckets" f)
        else begin
          let rec mono = function
            | (le1, v1) :: ((le2, v2) :: _ as rest) ->
              if not (le1 < le2) then
                err line (Printf.sprintf "histogram %s: le bounds not increasing" f);
              if v1 > v2 then
                err line (Printf.sprintf "histogram %s: bucket counts not cumulative" f);
              mono rest
            | _ -> ()
          in
          mono bs;
          let last_le, last_v = List.nth bs (List.length bs - 1) in
          if last_le <> infinity then err line (Printf.sprintf "histogram %s: no +Inf bucket" f);
          match !hcount with
          | Some c when last_le = infinity && c <> last_v ->
            err line (Printf.sprintf "histogram %s: +Inf bucket (%g) <> _count (%g)" f last_v c)
          | None -> err line (Printf.sprintf "histogram %s: missing _count" f)
          | Some _ -> ()
        end
      | _ -> ());
      (match !current with
      | Some (f, _) -> Hashtbl.replace completed f ()
      | None -> ());
      current := None;
      hbuckets := [];
      hcount := None
    in
    let eof_line = ref None in
    List.iteri
      (fun i line ->
        let n = i + 1 in
        match !eof_line with
        | Some e -> err n (Printf.sprintf "content after # EOF (line %d)" e)
        | None ->
          if line = "" then err n "empty line"
          else if line = "# EOF" then begin
            finalize n;
            eof_line := Some n
          end
          else if String.length line > 0 && line.[0] = '#' then begin
            match String.split_on_char ' ' line with
            | "#" :: "TYPE" :: name :: [ ty ] ->
              finalize n;
              if not (List.mem ty known_types) then
                err n (Printf.sprintf "unknown metric type %S" ty);
              if name = "" || not (is_name_start name.[0]) || String.exists (fun c -> not (is_name_char c)) name
              then err n (Printf.sprintf "invalid metric name %S" name);
              if Hashtbl.mem types name then err n (Printf.sprintf "duplicate TYPE for %s" name)
              else if Hashtbl.mem sampled name then
                err n (Printf.sprintf "TYPE for %s after its samples" name)
              else Hashtbl.replace types name ty
            | "#" :: "HELP" :: name :: _ when name <> "" -> ignore name
            | "#" :: "UNIT" :: name :: [ _unit ] when name <> "" -> ignore name
            | _ -> err n (Printf.sprintf "malformed comment line %S" line)
          end
          else begin
            match parse_sample line with
            | Error msg -> err n msg
            | Ok s -> (
              match family_of types s.s_name with
              | None -> err n (Printf.sprintf "sample %s has no declared family" s.s_name)
              | Some (f, ty) ->
                if not (suffix_allowed ty f s.s_name) then
                  err n (Printf.sprintf "sample %s not allowed for %s family %s" s.s_name ty f);
                (match !current with
                | Some (cf, _) when cf = f -> ()
                | _ ->
                  finalize n;
                  if Hashtbl.mem completed f then
                    err n (Printf.sprintf "samples of family %s are not contiguous" f);
                  current := Some (f, ty));
                Hashtbl.replace sampled f ();
                if ty = "histogram" then begin
                  if s.s_name = f ^ "_bucket" then begin
                    match List.assoc_opt "le" s.s_labels with
                    | None -> err n (Printf.sprintf "%s_bucket sample without le label" f)
                    | Some le_str -> (
                      match parse_value le_str with
                      | None -> err n (Printf.sprintf "unparseable le label %S" le_str)
                      | Some le -> hbuckets := (le, s.s_value) :: !hbuckets)
                  end
                  else if s.s_name = f ^ "_count" then hcount := Some s.s_value
                end)
          end)
      lines;
    (match !eof_line with
    | None -> errors := "missing # EOF terminator" :: !errors
    | Some _ -> ());
    List.rev !errors
  end
