(** Atomic values.

    "A Cactis database consists of a collection of abstract objects,
    atomic objects (such as strings, reals, integers, booleans, arrays,
    and records) …" (§2.1).  Attributes "may be of any C data type,
    except pointer"; we model the same surface: booleans, integers,
    floats, strings, times, arrays and records, plus [Null] for
    never-initialized slots. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Time of Cactis_util.Vtime.t
  | Arr of t array
  | Rec of (string * t) list

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Projections; raise {!Errors.Type_error} on shape mismatch. *)

val as_bool : t -> bool
val as_int : t -> int
val as_float : t -> float

(** [as_float] also accepts [Int], widening. *)

val as_string : t -> string
val as_time : t -> Cactis_util.Vtime.t
val as_array : t -> t array

(** [field v name] projects a record field.
    @raise Errors.Type_error if [v] is not a record or lacks [name]. *)
val field : t -> string -> t

(** Type name used in error messages ("int", "record", …). *)
val kind_name : t -> string

(** Arithmetic / comparison helpers used by rule expressions.  Numeric
    operators promote [Int] to [Float] when mixed; [add] concatenates
    strings and takes [later-of] on times when both sides are times. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val lt : t -> t -> bool
val le : t -> t -> bool

(** Aggregates over value lists (used for values transmitted across
    relationships).  Empty input yields the natural unit: [sum]=0,
    [count]=0, [max_]/[min_] raise unless [default] is given,
    [all_]=true, [any_]=false. *)

val sum : t list -> t
val count : t list -> t
val max_ : ?default:t -> t list -> t
val min_ : ?default:t -> t list -> t
val all_ : t list -> t
val any_ : t list -> t
