examples/flow_analysis.ml: Cactis Cactis_apps List Printf String
