type t = {
  trace : Trace.t;
  hists : Histogram.t;
}

let create ?trace_capacity () =
  { trace = Trace.create ?capacity:trace_capacity (); hists = Histogram.create () }

let time t h ?cat name f =
  let start_ns = Clock.now_ns () in
  let finish () =
    Histogram.observe h (Clock.elapsed_s ~since:start_ns);
    Trace.complete t.trace ?cat ~start_ns name
  in
  match f () with
  | v ->
    finish ();
    v
  | exception e ->
    finish ();
    raise e
