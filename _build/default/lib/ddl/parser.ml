exception Error of { line : int; col : int; message : string }

type state = {
  mutable toks : Lexer.located list;
}

let current st =
  match st.toks with
  | t :: _ -> t
  | [] -> assert false (* tokenize always ends with EOF *)

let peek st = (current st).Lexer.token

let peek2 st =
  match st.toks with
  | _ :: t :: _ -> t.Lexer.token
  | _ -> Token.EOF

let advance st = match st.toks with _ :: rest when rest <> [] -> st.toks <- rest | _ -> ()

let fail_at (loc : Lexer.located) fmt =
  Format.kasprintf
    (fun message -> raise (Error { line = loc.Lexer.line; col = loc.Lexer.col; message }))
    fmt

let fail st fmt = fail_at (current st) fmt

let expect st tok =
  if peek st = tok then advance st
  else fail st "expected %s, found %s" (Token.describe tok) (Token.describe (peek st))

let accept st tok =
  if peek st = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match peek st with
  | Token.IDENT name ->
    advance st;
    name
  | other -> fail st "expected an identifier, found %s" (Token.describe other)

let string_lit st =
  match peek st with
  | Token.STRING s ->
    advance st;
    s
  | other -> fail st "expected a string literal, found %s" (Token.describe other)

(* ------------------------------------------------------------------ *)
(* Expressions                                                          *)

let builtin_names = [ "time"; "later_of"; "earlier_of"; "later_than"; "abs"; "days_between" ]

let rec parse_expression st =
  if accept st Token.KW_IF then begin
    let cond = parse_expression st in
    expect st Token.KW_THEN;
    let then_ = parse_expression st in
    expect st Token.KW_ELSE;
    let else_ = parse_expression st in
    Ast.If (cond, then_, else_)
  end
  else parse_or st

and parse_or st =
  let lhs = parse_and st in
  if accept st Token.KW_OR then Ast.Binop (Ast.Or, lhs, parse_or st) else lhs

and parse_and st =
  let lhs = parse_not st in
  if accept st Token.KW_AND then Ast.Binop (Ast.And, lhs, parse_and st) else lhs

and parse_not st =
  if accept st Token.KW_NOT then Ast.Unop (Ast.Not, parse_not st) else parse_cmp st

and parse_cmp st =
  let lhs = parse_add st in
  let op =
    match peek st with
    | Token.EQ -> Some Ast.Eq
    | Token.NEQ -> Some Ast.Neq
    | Token.LT -> Some Ast.Lt
    | Token.LE -> Some Ast.Le
    | Token.GT -> Some Ast.Gt
    | Token.GE -> Some Ast.Ge
    | _ -> None
  in
  match op with
  | None -> lhs
  | Some op ->
    advance st;
    Ast.Binop (op, lhs, parse_add st)

and parse_add st =
  let rec loop lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      loop (Ast.Binop (Ast.Add, lhs, parse_mul st))
    | Token.MINUS ->
      advance st;
      loop (Ast.Binop (Ast.Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      loop (Ast.Binop (Ast.Mul, lhs, parse_unary st))
    | Token.SLASH ->
      advance st;
      loop (Ast.Binop (Ast.Div, lhs, parse_unary st))
    | _ -> lhs
  in
  loop (parse_unary st)

and parse_unary st =
  if accept st Token.MINUS then Ast.Unop (Ast.Neg, parse_unary st) else parse_primary st

and parse_call_args st =
  expect st Token.LPAREN;
  if accept st Token.RPAREN then []
  else begin
    let rec loop acc =
      let e = parse_expression st in
      if accept st Token.COMMA then loop (e :: acc)
      else begin
        expect st Token.RPAREN;
        List.rev (e :: acc)
      end
    in
    loop []
  end

and parse_agg_body st agg =
  (* max ( rel . attr [default e] ) *)
  expect st Token.LPAREN;
  let rel = ident st in
  expect st Token.DOT;
  let attr = ident st in
  let default = if accept st Token.KW_DEFAULT then Some (parse_expression st) else None in
  expect st Token.RPAREN;
  Ast.Rel_agg { agg; rel; attr; default }

and parse_primary st =
  match peek st with
  | Token.INT n ->
    advance st;
    Ast.Lit (Ast.Value.Int n)
  | Token.FLOAT f ->
    advance st;
    Ast.Lit (Ast.Value.Float f)
  | Token.STRING s ->
    advance st;
    Ast.Lit (Ast.Value.Str s)
  | Token.KW_TRUE ->
    advance st;
    Ast.Lit (Ast.Value.Bool true)
  | Token.KW_FALSE ->
    advance st;
    Ast.Lit (Ast.Value.Bool false)
  | Token.KW_NULL ->
    advance st;
    Ast.Lit Ast.Value.Null
  | Token.LPAREN ->
    advance st;
    let e = parse_expression st in
    expect st Token.RPAREN;
    e
  | Token.IDENT name -> (
    match Ast.agg_of_name (String.lowercase_ascii name) with
    | Some agg when peek2 st = Token.LPAREN ->
      advance st;
      parse_agg_body st agg
    | _ ->
      if List.mem (String.lowercase_ascii name) builtin_names && peek2 st = Token.LPAREN then begin
        advance st;
        let args = parse_call_args st in
        Ast.Call (String.lowercase_ascii name, args)
      end
      else begin
        advance st;
        if accept st Token.DOT then
          let attr = ident st in
          Ast.Rel_one (name, attr)
        else Ast.Self_attr name
      end)
  | other -> fail st "expected an expression, found %s" (Token.describe other)

(* ------------------------------------------------------------------ *)
(* Declarations                                                         *)

let parse_value_type st =
  let loc = current st in
  let name = ident st in
  match String.lowercase_ascii name with
  | "int" | "integer" -> Ast.T_int
  | "float" | "real" -> Ast.T_float
  | "bool" | "boolean" -> Ast.T_bool
  | "string" -> Ast.T_string
  | "time" -> Ast.T_time
  | other -> fail_at loc "unknown value type %s (int, float, bool, string, time)" other

let parse_rel_decl st =
  (* name : target (one|multi) (plug|socket) inverse name ; *)
  let rd_name = ident st in
  expect st Token.COLON;
  let rd_target = ident st in
  let rd_card =
    if accept st Token.KW_ONE then `One
    else if accept st Token.KW_MULTI then `Multi
    else fail st "expected 'one' or 'multi', found %s" (Token.describe (peek st))
  in
  let rd_polarity =
    if accept st Token.KW_PLUG then `Plug
    else if accept st Token.KW_SOCKET then `Socket
    else fail st "expected 'plug' or 'socket', found %s" (Token.describe (peek st))
  in
  expect st Token.KW_INVERSE;
  let rd_inverse = ident st in
  expect st Token.SEMI;
  { Ast.rd_name; rd_target; rd_card; rd_polarity; rd_inverse }

let parse_attr_decl st =
  let ad_name = ident st in
  expect st Token.COLON;
  let ad_type = parse_value_type st in
  let ad_default = if accept st Token.ASSIGN then Some (parse_expression st) else None in
  expect st Token.SEMI;
  { Ast.ad_name; ad_type; ad_default }

let parse_rule_decl st =
  let ru_name = ident st in
  expect st Token.EQ;
  let ru_expr = parse_expression st in
  expect st Token.SEMI;
  { Ast.ru_name; ru_expr }

let parse_constraint_decl st =
  let cd_name = ident st in
  expect st Token.EQ;
  let cd_expr = parse_expression st in
  expect st Token.KW_MESSAGE;
  let cd_message = string_lit st in
  let cd_recovery = if accept st Token.KW_RECOVERY then Some (ident st) else None in
  expect st Token.SEMI;
  { Ast.cd_name; cd_expr; cd_message; cd_recovery }

let parse_transmit_decl st =
  (* rel . export = attr ; *)
  let tr_rel = ident st in
  expect st Token.DOT;
  let tr_export = ident st in
  expect st Token.EQ;
  let tr_attr = ident st in
  expect st Token.SEMI;
  { Ast.tr_rel; tr_export; tr_attr }

let section_starts =
  [
    Token.KW_RELATIONSHIPS;
    Token.KW_ATTRIBUTES;
    Token.KW_RULES;
    Token.KW_CONSTRAINTS;
    Token.KW_TRANSMITS;
  ]

let rec parse_many st parse_one stop =
  if List.mem (peek st) stop then []
  else
    let d = parse_one st in
    d :: parse_many st parse_one stop

let parse_sections st =
  let rels = ref [] and attrs = ref [] and rules = ref [] and cons = ref [] and trans = ref [] in
  let stop = Token.KW_END :: section_starts in
  let rec loop () =
    match peek st with
    | Token.KW_RELATIONSHIPS ->
      advance st;
      rels := !rels @ parse_many st parse_rel_decl stop;
      loop ()
    | Token.KW_ATTRIBUTES ->
      advance st;
      attrs := !attrs @ parse_many st parse_attr_decl stop;
      loop ()
    | Token.KW_RULES ->
      advance st;
      rules := !rules @ parse_many st parse_rule_decl stop;
      loop ()
    | Token.KW_CONSTRAINTS ->
      advance st;
      cons := !cons @ parse_many st parse_constraint_decl stop;
      loop ()
    | Token.KW_TRANSMITS ->
      advance st;
      trans := !trans @ parse_many st parse_transmit_decl stop;
      loop ()
    | _ -> ()
  in
  loop ();
  (!rels, !attrs, !rules, !cons, !trans)

let parse_class st =
  expect st Token.KW_OBJECT;
  expect st Token.KW_CLASS;
  let cl_name = ident st in
  expect st Token.KW_IS;
  let cl_rels, cl_attrs, cl_rules, cl_constraints, cl_transmits = parse_sections st in
  expect st Token.KW_END;
  ignore (accept st Token.KW_OBJECT);
  ignore (accept st Token.SEMI);
  { Ast.cl_name; cl_rels; cl_attrs; cl_rules; cl_constraints; cl_transmits }

let parse_subtype st =
  expect st Token.KW_SUBTYPE;
  let su_name = ident st in
  expect st Token.KW_OF;
  let su_parent = ident st in
  expect st Token.KW_WHERE;
  let su_predicate = parse_expression st in
  let su_attrs, su_rules =
    if accept st Token.KW_IS then begin
      let rels, attrs, rules, cons, trans = parse_sections st in
      (match rels with
      | [] -> ()
      | _ -> fail st "subtypes cannot declare relationships");
      (match cons with
      | [] -> ()
      | _ -> fail st "subtypes cannot declare constraints");
      (match trans with
      | [] -> ()
      | _ -> fail st "subtypes cannot declare transmissions");
      (attrs, rules)
    end
    else ([], [])
  in
  expect st Token.KW_END;
  ignore (accept st Token.KW_SUBTYPE);
  ignore (accept st Token.SEMI);
  { Ast.su_name; su_parent; su_predicate; su_attrs; su_rules }

let parse_schema src =
  let st = { toks = Lexer.tokenize src } in
  let rec loop acc =
    match peek st with
    | Token.EOF -> List.rev acc
    | Token.KW_OBJECT -> loop (Ast.Class (parse_class st) :: acc)
    | Token.KW_SUBTYPE -> loop (Ast.Subtype (parse_subtype st) :: acc)
    | other -> fail st "expected 'object class' or 'subtype', found %s" (Token.describe other)
  in
  loop []

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expression st in
  expect st Token.EOF;
  e
