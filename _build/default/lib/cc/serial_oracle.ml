module Db = Cactis.Db
module Value = Cactis.Value
module Schema = Cactis.Schema

let exec_serial db op =
  match op with
  | Workload.Read (id, a) | Workload.Read_derived (id, a) -> ignore (Db.get db ~watch:false id a)
  | Workload.Write (id, a, v) -> Db.set db id a v
  | Workload.Incr (id, a, n) ->
    let v = Db.get db ~watch:false id a in
    Db.set db id a (Value.Int (Value.as_int v + n))

let replay ~setup ~committed =
  let db = setup () in
  let ordered = List.sort (fun (a, _) (b, _) -> compare a b) committed in
  List.iter
    (fun (_, script) -> Db.with_txn db (fun () -> List.iter (exec_serial db) script))
    ordered;
  db

let snapshot db attrs =
  Db.instance_ids db
  |> List.concat_map (fun id ->
         let tn = Db.type_of db id in
         attrs
         |> List.filter_map (fun a ->
                match Schema.attr_opt (Db.schema db) ~type_name:tn a with
                | Some { Schema.kind = Schema.Intrinsic _; _ } ->
                  Some ((id, a), Db.get db ~watch:false id a)
                | Some _ | None -> None))
  |> List.sort compare

let equivalent db1 db2 attrs =
  let s1 = snapshot db1 attrs and s2 = snapshot db2 attrs in
  List.length s1 = List.length s2
  && List.for_all2 (fun (k1, v1) (k2, v2) -> k1 = k2 && Value.equal v1 v2) s1 s2
