lib/util/ascii_table.ml: Array Float List Printf String
