(** In-memory representation of one object instance: attribute slots
    (value + up-to-date state) and relationship link lists.

    This module is deliberately dumb storage — all invariants
    (propagation, logging, inverse-link maintenance, paging) are enforced
    by {!Store}, {!Engine} and {!Db}. *)

type state =
  | Up_to_date
  | Out_of_date
  | In_progress  (** being evaluated; reading it again means a data cycle *)

type slot = {
  mutable value : Value.t;
  mutable state : state;
}

type t = {
  id : int;
  type_name : string;
  slots : (string, slot) Hashtbl.t;
  links : (string, int list ref) Hashtbl.t;  (** rel -> related ids, oldest first *)
  mutable alive : bool;
}

val create : id:int -> type_name:string -> t

(** [slot t a] returns the slot for attribute [a], creating an
    out-of-date [Null] slot on first touch (new attributes may be added
    to the schema after instances exist). *)
val slot : t -> string -> slot

val slot_opt : t -> string -> slot option

(** Related ids across one relationship (empty when never linked). *)
val linked : t -> string -> int list

(** [add_link t rel id] appends; [remove_link t rel id] removes the first
    occurrence and returns whether it was present. *)
val add_link : t -> string -> int -> unit

val remove_link : t -> string -> int -> bool

(** All (rel, ids) pairs with at least one link. *)
val all_links : t -> (string * int list) list
