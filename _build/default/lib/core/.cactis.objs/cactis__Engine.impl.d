lib/core/engine.ml: Cactis_storage Cactis_util Errors Fun Hashtbl Instance List Sched Schema Store Value
