(** Convergence classification of potential evaluation cycles ([Far86]).

    A dependency cycle whose every rule is monotone over a bounded
    lattice converges under fixed-point iteration.  This pass inspects
    the {!Cactis.Schema.rule_shape} of every attribute on a cyclic SCC
    of the dependency graph: all bounded — the SCC is {e convergent}
    and the engine's opt-in fixed-point mode
    ({!Cactis.Db.set_fixed_point}) can run cyclic data to a proven
    fixed point; any unbounded or undeclared shape — {e divergent},
    with the offending attribute as witness.  The verdict is sound but
    not complete: "divergent" means "not provably convergent". *)

type verdict =
  | Convergent of {
      shapes : (Diag.node * Cactis.Schema.rule_shape) list;
          (** every SCC member with its shape, in SCC node order *)
      coeff : int;
          (** type-level sweep-bound coefficient: [1 + sum of chain
              heights], the factor the cost pass multiplies a cyclic
              SCC's per-evaluation cost by *)
    }
  | Divergent of {
      culprit : Diag.node;  (** first SCC member that breaks the proof *)
      why : string;
    }

(** [classify view graph scc] — verdict for one cyclic SCC (node ids as
    returned by {!Depgraph.cyclic_sccs}). *)
val classify : View.t -> Depgraph.t -> int list -> verdict

(** [iteration_bound ~instances verdict] — a static upper bound on the
    number of Gauss-Seidel sweeps the engine needs for any instance
    graph with at most [instances] participating instances; [None] for
    divergent verdicts.  Dominates the engine's own dynamic cap, so
    measured [fixpoint_sweeps] never exceed it (property-tested). *)
val iteration_bound : instances:int -> verdict -> int option

val verdict_name : verdict -> string

(** ["cfg_node.live_in: lattice(8), cfg_node.live_out: lattice(8)"] *)
val shapes_summary : (Diag.node * Cactis.Schema.rule_shape) list -> string
