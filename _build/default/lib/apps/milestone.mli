(** Milestone manager (Figure 1 and §4).

    Milestones carry an originally scheduled completion time and a local
    work estimate; the expected completion time is derived — local work
    added to the latest expected completion among the milestones depended
    on — so "changing the expected completion date for one milestone may
    have effects that ripple throughout the expected completion dates for
    other milestones in the system".  [late] compares expected against
    scheduled.  The §4 extension, [very_late] with its subtype, is
    installed dynamically by {!enable_very_late} without touching any
    existing attribute or tool. *)

type t

val create : ?strategy:Cactis.Engine.strategy -> unit -> t

val db : t -> Cactis.Db.t

(** [add t ~name ~scheduled ~local_work] (times in days). *)
val add : t -> name:string -> scheduled:float -> local_work:float -> int

(** [depends_on t a b] — milestone [a] cannot complete before [b]. *)
val depends_on : t -> int -> int -> unit

(** [set_local_work t id days] — re-estimate (ripples). *)
val set_local_work : t -> int -> float -> unit

(** [slip t id days] — add [days] to the local work estimate. *)
val slip : t -> int -> float -> unit

val name : t -> int -> string
val scheduled : t -> int -> float
val expected : t -> int -> float
val is_late : t -> int -> bool

(** All late milestones (name-sorted ids). *)
val late_set : t -> int list

(** [critical_path t id] — the dependency chain that determines [id]'s
    expected completion, ending at [id]. *)
val critical_path : t -> int -> int list

(** [enable_very_late t ~limit_days] — §4: install a [very_late]
    attribute (expected exceeds scheduled by more than the limit) and a
    [very_late_milestone] subtype over it, dynamically. *)
val enable_very_late : t -> limit_days:float -> unit

val is_very_late : t -> int -> bool
val very_late_set : t -> int list

(** Simple textual status report (one line per milestone). *)
val report : t -> string
