(** Elaboration: AST -> executable {!Cactis.Schema}.

    Rule expressions are compiled to (declared sources, compute closure)
    pairs; the declared sources are extracted syntactically from the
    expression, so the engine's dependency graph is exact. *)

exception Error of string

(** [compile_rule expr] compiles a rule expression. *)
val compile_rule : Ast.expr -> Cactis.Schema.rule

(** [eval_expr env expr] evaluates an expression against an arbitrary
    environment (used by the ad-hoc {!Query} facility). *)
val eval_expr : Cactis.Schema.env -> Ast.expr -> Cactis.Value.t

(** [const_value expr] evaluates a constant expression (attribute
    defaults). @raise Error if the expression references attributes or
    relationships. *)
val const_value : Ast.expr -> Cactis.Value.t

(** [extend schema items] elaborates the parsed items into an existing
    schema (dynamic extension: new classes and subtypes may arrive while
    a database is live).
    @raise Error / Cactis.Errors.Type_error on inconsistent
    declarations (unknown targets, mismatched inverses, duplicates). *)
val extend : Cactis.Schema.t -> Ast.schema -> unit

(** [schema items] elaborates into a fresh schema. *)
val schema : Ast.schema -> Cactis.Schema.t

(** [load_string src] parses and elaborates. *)
val load_string : string -> Cactis.Schema.t

(** [extend_db db src] parses [src] and extends a live database's schema,
    installing new attributes on existing instances. *)
val extend_db : Cactis.Db.t -> string -> unit
