lib/core/index.mli: Db Value
