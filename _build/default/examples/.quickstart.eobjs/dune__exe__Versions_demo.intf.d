examples/versions_demo.mli:
