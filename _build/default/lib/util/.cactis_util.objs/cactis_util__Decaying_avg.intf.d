lib/util/decaying_avg.mli: Format
