lib/storage/pager.mli: Buffer_pool Cluster Disk
