(** Static type checking of schema rule expressions.

    Attributes in Cactis are typed ("attributes … may be of any C data
    type", §2.1); intrinsic declarations carry their type, and this
    module infers the types of derived attributes from their rules,
    reporting inconsistencies at schema-definition time instead of as
    run-time [Type_error]s.

    Rules may reference each other (including across relationships, and
    recursively — Figure 1's [exp_compl] reads its own attribute on
    related instances), so inference iterates to a fixpoint from
    [Unknown].

    Checked, among others:
    - arithmetic operand compatibility (mirroring {!Cactis.Value}'s
      dynamic semantics, including time arithmetic);
    - comparisons between values of incompatible kinds;
    - booleans where [and]/[or]/[not]/[if] demand them;
    - constraints and subtype predicates computing booleans;
    - references to attributes/relationships that exist nowhere in the
      schema (including across relationships, which elaboration defers
      to run time). *)

type ty =
  | T_int
  | T_float
  | T_bool
  | T_string
  | T_time
  | T_unknown  (** not yet determined (pre-fixpoint), or polymorphic null *)

val ty_name : ty -> string

(** [check items] type-checks a parsed schema; returns the list of error
    messages (empty = well-typed). *)
val check : Ast.schema -> string list

(** [check_exn items] raises {!Ddl_error.Error} (= [Elaborate.Error])
    with the first error. *)
val check_exn : Ast.schema -> unit

(** [infer items ~class_name ~attr] — the inferred type of an attribute
    after fixpoint (for tests/tools).
    @raise Not_found if the attribute does not exist. *)
val infer : Ast.schema -> class_name:string -> attr:string -> ty
