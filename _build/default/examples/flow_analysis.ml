(* Program flow analysis as attribute evaluation (§4): live variables and
   reaching definitions over a goto-less structured program, maintained
   incrementally as the program is edited.

   Run with: dune exec examples/flow_analysis.exe *)

module F = Cactis_apps.Flowan
module Db = Cactis.Db
module Value = Cactis.Value

let assign ?(uses = []) target label = F.Assign { target; uses; label }
let seq = List.fold_left (fun a b -> F.Seq (a, b))

let () =
  (* x := input; y := x * 2; if (cond) t := y else t := 1;
     scratch := 7; out := t
     — 'scratch' is assigned but never read: a dead assignment. *)
  let program =
    seq
      (assign "x" ~uses:[ "input" ] "X")
      [
        assign "y" ~uses:[ "x" ] "Y";
        F.If
          {
            cond_uses = [ "cond" ];
            then_ = assign "t" ~uses:[ "y" ] "T1";
            else_ = assign "t" "T2";
          };
        assign "scratch" "SCR";
        assign "out" ~uses:[ "t" ] "OUT";
      ]
  in
  let t = F.analyze ~exit_live:[ "out" ] program in
  print_endline "node  live_in              live_out             reaching defs (in)";
  List.iter
    (fun n ->
      Printf.printf "%-5s %-20s %-20s %s\n" (F.label t n)
        (String.concat "," (F.live_in t n))
        (String.concat "," (F.live_out t n))
        (String.concat "," (F.reaching_in t n)))
    (F.nodes t);

  Printf.printf "\ndead assignments: %s\n"
    (String.concat ", " (List.map (F.label t) (F.dead_assignments t)));

  (* Incremental edit: OUT starts using 'scratch' too — liveness updates
     ripple backwards without reanalyzing the program, and the SCR
     assignment stops being dead. *)
  let out_node = List.find (fun n -> F.label t n = "OUT") (F.nodes t) in
  Db.set (F.db t) out_node "use" (Value.Arr [| Value.Str "scratch"; Value.Str "t" |]);
  Printf.printf "after OUT also reads 'scratch': dead assignments = [%s]\n"
    (String.concat ", " (List.map (F.label t) (F.dead_assignments t)))
