lib/storage/disk.ml: Format
