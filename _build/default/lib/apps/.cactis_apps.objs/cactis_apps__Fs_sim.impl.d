lib/apps/fs_sim.ml: Cactis_util Hashtbl List Option Printf String
