lib/apps/traceability.mli: Cactis
