(** Always-on flight recorder.

    A process-global, per-domain ring of compact structured events —
    the black box that explains a crash or a latency spike after the
    fact.  Unlike the {!Trace} tracer (opt-in, rich args), the flight
    recorder is {e never off}: every instrumented point pays one
    flag-load-and-branch plus a record allocation and a ring-slot
    store, cheap enough to leave in every hot path (E18 measures the
    E13 workload within noise with the recorder running).

    Each domain records into its own fixed-size ring (no sharing, no
    locks on the hot path); rings hold the last {!capacity} events per
    domain and overwrite the oldest on wrap.  {!snapshot} (and the
    dump functions built on it) reads every ring {e while other
    domains keep recording} and returns a {e consistent prefix} per
    domain: event records are immutable and boxed, so a slot read can
    never tear, and publication through an atomic write-index lets the
    reader trim exactly the entries the writer may have been
    overwriting mid-copy.

    Dumps use a self-contained little-endian binary format
    ([CFR1]; see DESIGN.md §12) carrying a wall-clock / monotonic-clock
    correlation pair, so an offline tool ([cactis doctor]) can place
    every event in wall time. *)

(** What happened.  The two integer payloads [fe_a]/[fe_b] are
    per-kind (version stamps, byte counts, block numbers — see
    {!Doctor} rendering); [fe_detail] is a short string (truncated to
    255 bytes at record time), shared constants on hot paths. *)
type kind =
  | Txn_begin  (** [a] = version id this txn will commit as *)
  | Txn_commit  (** [a] = committed version id, [b] = ops in delta *)
  | Txn_abort  (** [a] = ops rolled back *)
  | Wal_append  (** [a] = frame bytes, [b] = appends so far *)
  | Wal_fsync  (** [a] = appends covered by this fsync *)
  | Checkpoint  (** [a] = generation, [b] = schema version *)
  | Pager_miss  (** [a] = block number *)
  | Pager_writeback  (** [a] = block number *)
  | Recluster_slice  (** [a] = instances moved *)
  | Net_accept  (** [a] = live connections after accept *)
  | Net_verb  (** [a] = service µs, [b] = req id; [detail] = verb *)
  | Net_error  (** [a] = req id; [detail] = error code name *)
  | Schema_delta  (** [a] = version stamp; [detail] = change name *)
  | Watchdog  (** [detail] = anomaly reason *)
  | Note  (** free-form marker ([detail]) *)

val kind_name : kind -> string

type event = {
  fe_ts_ns : int64;  (** monotonic clock reading at record time *)
  fe_kind : kind;
  fe_a : int;
  fe_b : int;
  fe_detail : string;
}

(** Events retained per domain (power of two). *)
val capacity : int

(** [record k ~a ~b] appends one event to the calling domain's ring.
    Safe from any domain, never raises, never blocks (the ring is
    created and registered on the domain's first record). *)
val record : kind -> a:int -> b:int -> unit

(** [record_s k ~a ~b detail] — like {!record} with a detail string
    (truncated to 255 bytes). *)
val record_s : kind -> a:int -> b:int -> string -> unit

(** [note msg] — a free-form {!Note} marker. *)
val note : string -> unit

(** [name_domain name] labels the calling domain's section in dumps
    ("writer", "reader-0", …).  Default label is ["domain-N"]. *)
val name_domain : string -> unit

(** Measurement-only master switch (E18 baseline runs).  The recorder
    starts {e on}; suppressing it turns {!record} into the single
    flag-check — production code never calls this. *)
val set_recording : bool -> unit

val recording : unit -> bool

(** One domain's slice of a dump: a consistent, oldest-first prefix of
    its ring at snapshot time. *)
type section = {
  fs_domain : int;  (** domain id *)
  fs_name : string;
  fs_total : int;  (** events ever recorded by this domain *)
  fs_events : event list;
}

type dump = {
  d_wall_us : int64;  (** wall clock at snapshot, µs since epoch *)
  d_mono_ns : int64;  (** monotonic reading at snapshot *)
  d_sections : section list;  (** sorted by domain id; empty rings omitted *)
}

(** Snapshot every domain's ring (consistent prefix per domain; safe
    while other domains record). *)
val snapshot : unit -> dump

(** [CFR1] binary encoding (self-contained; no schema needed to read). *)
val encode : dump -> string

(** Decode a [CFR1] dump; [Error msg] on truncated or corrupt input. *)
val decode : string -> (dump, string) result

(** [dump_to_file ~dir ~reason] snapshots, encodes and writes a
    timestamped post-mortem file ([flight-<utc>-<pid>-<reason>.cfr])
    under [dir] (created, with parents, if missing); returns its
    path. *)
val dump_to_file : dir:string -> reason:string -> string

(** Forget all recorded events and domain labels (test isolation;
    call while no other domain is recording). *)
val reset : unit -> unit
