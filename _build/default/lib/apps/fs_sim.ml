module Vtime = Cactis_util.Vtime

type file = {
  mutable content : string;
  mutable mtime : Vtime.t;
}

type t = {
  table : (string, file) Hashtbl.t;
  mutable clock : Vtime.t;
  mutable log : string list;  (* newest first *)
  mutable interpreter : t -> string -> unit;
}

let tick = 0.001  (* days; small enough to never collide with schedule-scale times *)

let now t = t.clock
let advance t days = t.clock <- Vtime.add_days t.clock days

let bump t =
  advance t tick;
  t.clock

let write_file t path content =
  let mtime = bump t in
  match Hashtbl.find_opt t.table path with
  | Some f ->
    f.content <- content;
    f.mtime <- mtime
  | None -> Hashtbl.add t.table path { content; mtime }

let read_file t path = Option.map (fun f -> f.content) (Hashtbl.find_opt t.table path)
let remove t path = Hashtbl.remove t.table path
let exists t path = Hashtbl.mem t.table path

let touch t path =
  match Hashtbl.find_opt t.table path with
  | Some f -> f.mtime <- bump t
  | None -> write_file t path ""

let mod_time t path =
  match Hashtbl.find_opt t.table path with
  | Some f -> f.mtime
  | None -> Vtime.far_future

(* Default interpreter: the command's output file is the word following
   "-o", or its last word; executing the command (re)creates that file. *)
let default_interpreter t cmd =
  let words = String.split_on_char ' ' cmd |> List.filter (fun w -> w <> "") in
  let rec output_of = function
    | "-o" :: target :: _ -> Some target
    | _ :: rest -> output_of rest
    | [] -> None
  in
  let target =
    match output_of words with
    | Some target -> Some target
    | None -> ( match List.rev words with target :: _ :: _ -> Some target | _ -> None)
  in
  match target with
  | Some target -> write_file t target (Printf.sprintf "built by: %s" cmd)
  | None -> ()

let create () =
  { table = Hashtbl.create 32; clock = Vtime.epoch; log = []; interpreter = default_interpreter }

let set_interpreter t f = t.interpreter <- f

let run_command t cmd =
  t.log <- cmd :: t.log;
  t.interpreter t cmd

let journal t = List.rev t.log
let clear_journal t = t.log <- []

let files t = Hashtbl.fold (fun path _ acc -> path :: acc) t.table [] |> List.sort compare
