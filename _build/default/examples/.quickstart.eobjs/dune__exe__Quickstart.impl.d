examples/quickstart.ml: Cactis Cactis_util List Printf
