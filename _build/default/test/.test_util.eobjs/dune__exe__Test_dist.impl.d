test/test_dist.ml: Alcotest Array Cactis Cactis_dist Cactis_util List Option Printf
