test/test_gen_schema.ml: Alcotest Array Buffer Cactis Cactis_ddl Cactis_util List Printf QCheck QCheck_alcotest String
