(* LRU implemented as a doubly-linked list of frames plus a flat index
   by block number (blocks are small dense ints).  The list head is the
   most recently used frame.

   Frames carry a dirty bit: a dirty frame's block image is re-rendered
   (via the pager-installed [render] callback) and written back to the
   device when the frame is evicted or the pool is flushed.  On a
   simulated device the write-back is a counter bump; on a real device
   it is a physical block write. *)

type frame = {
  block : int;
  mutable dirty : bool;
  mutable prev : frame option;
  mutable next : frame option;
}

type t = {
  cap : int;
  disk : Disk.t;
  mutable index : frame option array;  (* by block number *)
  mutable head : frame option;
  mutable tail : frame option;
  mutable count : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable writeback_count : int;
  mutable render : (int -> bytes) option;
      (* current block image, for write-back; installed by the pager *)
}

let create ~capacity disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  {
    cap = capacity;
    disk;
    index = Array.make 64 None;
    head = None;
    tail = None;
    count = 0;
    hit_count = 0;
    miss_count = 0;
    writeback_count = 0;
    render = None;
  }

let set_render t f = t.render <- Some f

let ensure t block =
  let n = Array.length t.index in
  if block >= n then begin
    let bigger = Array.make (max (block + 1) (2 * n)) None in
    Array.blit t.index 0 bigger 0 n;
    t.index <- bigger
  end

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.next <- t.head;
  f.prev <- None;
  (match t.head with Some h -> h.prev <- Some f | None -> t.tail <- Some f);
  t.head <- Some f

let write_back t f =
  if f.dirty then begin
    f.dirty <- false;
    t.writeback_count <- t.writeback_count + 1;
    Cactis_obs.Flight.record Cactis_obs.Flight.Pager_writeback ~a:f.block ~b:t.writeback_count;
    match t.render with
    | Some render -> Disk.write_block t.disk f.block (render f.block)
    | None -> Disk.write t.disk
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some f ->
    write_back t f;
    unlink t f;
    t.index.(f.block) <- None;
    t.count <- t.count - 1

let touch ?(dirty = false) t block =
  ensure t block;
  match t.index.(block) with
  | Some f ->
    t.hit_count <- t.hit_count + 1;
    if dirty then f.dirty <- true;
    (match t.head with
    | Some h when h == f -> ()  (* already most recent: skip the relink *)
    | _ ->
      unlink t f;
      push_front t f);
    `Hit
  | None ->
    t.miss_count <- t.miss_count + 1;
    Cactis_obs.Flight.record Cactis_obs.Flight.Pager_miss ~a:block ~b:t.miss_count;
    ignore (Disk.read_block t.disk block);
    if t.count >= t.cap then evict_lru t;
    let f = { block; dirty; prev = None; next = None } in
    t.index.(block) <- Some f;
    push_front t f;
    t.count <- t.count + 1;
    `Miss

(* [mark_dirty t block] — set the dirty bit if the block is resident;
   does not affect LRU order or hit/miss statistics (the caller has just
   touched the block). *)
let mark_dirty t block =
  if block < Array.length t.index then
    match t.index.(block) with Some f -> f.dirty <- true | None -> ()

let resident t block = block < Array.length t.index && t.index.(block) <> None

let contents t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some f -> walk (f.block :: acc) f.next
  in
  walk [] t.head

let capacity t = t.cap
let hits t = t.hit_count
let misses t = t.miss_count
let writebacks t = t.writeback_count

let clear t =
  Array.fill t.index 0 (Array.length t.index) None;
  t.head <- None;
  t.tail <- None;
  t.count <- 0

let flush t =
  let rec walk = function
    | None -> ()
    | Some f ->
      write_back t f;
      walk f.next
  in
  walk t.head;
  clear t

(* [drop_all t] empties the pool without writing anything back — used
   when the placement map the render callback reads is about to be
   replaced wholesale (re-clustering), making the frames' images stale
   by construction. *)
let drop_all t = clear t

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0;
  t.writeback_count <- 0
