test/test_core.ml: Alcotest Array Cactis Cactis_util List Printf
