module Db = Cactis.Db
module Value = Cactis.Value

type t = { database : Db.t }

let schema_src =
  {|
  object class test_case is
    relationships
      checks : requirement multi plug inverse verified_by;
    attributes
      name   : string;
      passed : bool := false;
  end object;

  object class requirement is
    relationships
      verified_by : test_case multi socket inverse checks;
      project     : project one socket inverse contains;
    attributes
      name     : string;
      critical : bool := false;
    rules
      covered     = any(verified_by.passed);
      covered_n   = if covered then 1 else 0;
      critical_ok = not critical or covered;
  end object;

  object class project is
    relationships
      contains : requirement multi plug inverse project;
    attributes
      name : string;
    rules
      total_reqs    = count(contains.name);
      covered_reqs  = sum(contains.covered_n default 0);
      release_ready = all(contains.critical_ok);
  end object;
|}

let create () = { database = Db.create (Cactis_ddl.Elaborate.load_string schema_src) }

let db t = t.database

let named t class_name name =
  Db.with_txn t.database (fun () ->
      let id = Db.create_instance t.database class_name in
      Db.set t.database id "name" (Value.Str name);
      id)

let add_project t ~name = named t "project" name

let add_requirement t ~project ~name ~critical =
  Db.with_txn t.database (fun () ->
      let id = Db.create_instance t.database "requirement" in
      Db.set t.database id "name" (Value.Str name);
      Db.set t.database id "critical" (Value.Bool critical);
      Db.link t.database ~from_id:project ~rel:"contains" ~to_id:id;
      id)

let add_test t ~name = named t "test_case" name

let verifies t ~test ~requirement =
  Db.link t.database ~from_id:test ~rel:"checks" ~to_id:requirement

let record_run t ~test ~passed = Db.set t.database test "passed" (Value.Bool passed)

let covered t req = Value.as_bool (Db.get t.database req "covered")

let coverage t project =
  ( Value.as_int (Db.get t.database project "covered_reqs"),
    Value.as_int (Db.get t.database project "total_reqs") )

let release_ready t project = Value.as_bool (Db.get t.database project "release_ready")

let blockers t project =
  Db.related t.database project "contains"
  |> List.filter (fun req ->
         Value.as_bool (Db.get t.database ~watch:false req "critical") && not (covered t req))

let requirement_name t req = Value.as_string (Db.get t.database ~watch:false req "name")
