(** LRU buffer pool over blocks.

    Touching a resident block is a hit; touching a non-resident block
    costs one disk read and may evict the least-recently-used block.
    The chunk scheduler also consults {!resident} to decide which pending
    traversal processes can run without disk access (the paper's
    "very high priority queue" of in-memory work).

    Frames carry a dirty bit.  Evicting or flushing a dirty frame writes
    the block's current image back to the device — rendered by the
    callback installed with {!set_render} (the pager supplies it), a
    bare counter bump otherwise. *)

type t

(** [create ~capacity disk] builds a pool holding at most [capacity]
    blocks. [capacity] must be at least 1. *)
val create : capacity:int -> Disk.t -> t

(** [set_render t f] installs the block-image renderer used for dirty
    write-back ([f block] must return at most one block's bytes). *)
val set_render : t -> (int -> bytes) -> unit

(** [touch ?dirty t block] brings [block] into the pool, counting a disk
    read on a miss, and returns whether it was a hit.  Eviction is LRU,
    writing back the victim's image first when it is dirty.  [dirty]
    (default false) marks the touched frame dirty (a write access). *)
val touch : ?dirty:bool -> t -> int -> [ `Hit | `Miss ]

(** [mark_dirty t block] sets the dirty bit of a resident block without
    affecting recency or statistics; no-op when not resident. *)
val mark_dirty : t -> int -> unit

(** [resident t block] is true iff [block] is currently buffered
    (does not affect recency). *)
val resident : t -> int -> bool

(** Blocks currently buffered, most recent first. *)
val contents : t -> int list

val capacity : t -> int
val hits : t -> int
val misses : t -> int

(** Dirty frames written back so far (evictions + flushes). *)
val writebacks : t -> int

(** [flush t] writes back every dirty frame and empties the pool (e.g.
    between experiment runs) without resetting hit/miss statistics. *)
val flush : t -> unit

(** [drop_all t] empties the pool {e without} write-back — for when the
    placement underlying the render callback is about to be replaced and
    the buffered images are stale by construction. *)
val drop_all : t -> unit

(** [reset_stats t] zeroes the hit/miss/write-back counters. *)
val reset_stats : t -> unit
