(* Distributed-placement prototype tests. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Partition = Cactis_dist.Partition
module Rng = Cactis_util.Rng

let int n = Value.Int n

let node_schema () =
  let sch = Schema.create () in
  Schema.add_type sch "node";
  Schema.declare_relationship sch ~from_type:"node" ~rel:"deps" ~to_type:"node" ~inverse:"rdeps"
    ~card:Schema.Multi ~inverse_card:Schema.Multi;
  Schema.add_attr sch ~type_name:"node" (Rule.intrinsic "local" (int 1));
  Schema.add_attr sch ~type_name:"node"
    (Rule.derived "total"
       (Rule.combine_self_rel "local" "deps" "total" ~f:(fun own totals ->
            Value.add own (Value.sum totals))));
  sch

(* Two tight communities with heavy internal traffic and one cold
   cross-community link. *)
let communities_db () =
  let db = Db.create (node_schema ()) in
  let mk () = Array.init 4 (fun _ -> Db.create_instance db "node") in
  let a = mk () and b = mk () in
  let ring g =
    for i = 0 to Array.length g - 2 do
      Db.link db ~from_id:g.(i) ~rel:"deps" ~to_id:g.(i + 1)
    done
  in
  ring a;
  ring b;
  Db.link db ~from_id:a.(3) ~rel:"deps" ~to_id:b.(0);
  (* Generate traffic: repeatedly change and query within each community. *)
  for round = 1 to 50 do
    Db.set db a.(3) "local" (int round);
    ignore (Db.get db a.(0) "total");
    Db.set db b.(3) "local" (int (round + 1));
    ignore (Db.get db b.(0) "total")
  done;
  (db, a, b)

let test_placement_total () =
  let db, _, _ = communities_db () in
  let ids = Db.instance_ids db in
  List.iter
    (fun p ->
      Alcotest.(check int) "all placed" (List.length ids)
        (Array.fold_left ( + ) 0 (Partition.balance p));
      List.iter
        (fun id ->
          match Partition.site_of p id with
          | Some s -> Alcotest.(check bool) "site in range" true (s >= 0 && s < 2)
          | None -> Alcotest.fail "unplaced instance")
        ids)
    [
      Partition.random (Rng.create 1) ~ids ~sites:2;
      Partition.round_robin ~ids ~sites:2;
      Partition.by_usage (Db.store db) ~sites:2;
    ]

let test_usage_placement_colocates () =
  let db, a, b = communities_db () in
  let p = Partition.by_usage (Db.store db) ~sites:2 in
  let site_of id = Option.get (Partition.site_of p id) in
  (* Each community lands on a single site. *)
  Array.iter (fun id -> Alcotest.(check int) "community a together" (site_of a.(0)) (site_of id)) a;
  Array.iter (fun id -> Alcotest.(check int) "community b together" (site_of b.(0)) (site_of id)) b

let test_usage_beats_striping () =
  let db, _, _ = communities_db () in
  let ids = Db.instance_ids db in
  let store = Db.store db in
  let usage = Partition.by_usage store ~sites:2 in
  let striped = Partition.round_robin ~ids ~sites:2 in
  let m_usage = Partition.cross_site_traffic store usage in
  let m_striped = Partition.cross_site_traffic store striped in
  Alcotest.(check bool)
    (Printf.sprintf "usage placement (%d msgs) beats striping (%d msgs)" m_usage m_striped)
    true (m_usage * 4 < m_striped);
  (* Conservation: local + cross equals total crossings regardless of
     placement. *)
  Alcotest.(check int) "traffic conserved"
    (Partition.local_traffic store usage + m_usage)
    (Partition.local_traffic store striped + m_striped)

let test_single_site_no_traffic () =
  let db, _, _ = communities_db () in
  let p = Partition.by_usage (Db.store db) ~sites:1 in
  Alcotest.(check int) "one site, zero messages" 0
    (Partition.cross_site_traffic (Db.store db) p)

let test_random_deterministic () =
  let db, _, _ = communities_db () in
  let ids = Db.instance_ids db in
  let p1 = Partition.random (Rng.create 9) ~ids ~sites:4 in
  let p2 = Partition.random (Rng.create 9) ~ids ~sites:4 in
  List.iter
    (fun id ->
      Alcotest.(check (option int)) "same placement" (Partition.site_of p1 id)
        (Partition.site_of p2 id))
    ids

let test_by_range () =
  let ids = [ 7; 3; 11; 1; 5; 9; 13; 15 ] in
  let p = Partition.by_range ~ids ~sites:4 in
  Alcotest.(check int) "all placed" (List.length ids)
    (Array.fold_left ( + ) 0 (Partition.balance p));
  (* Contiguity: site index is monotone in id. *)
  let sorted = List.sort compare ids in
  let sites_in_order = List.map (fun id -> Option.get (Partition.site_of p id)) sorted in
  Alcotest.(check (list int)) "monotone contiguous chunks" [ 0; 0; 1; 1; 2; 2; 3; 3 ]
    sites_in_order;
  (* site_of_range agrees with site_of on known ids... *)
  List.iter
    (fun id ->
      Alcotest.(check int) "range routing agrees" (Option.get (Partition.site_of p id))
        (Partition.site_of_range p id))
    ids;
  (* ...and is total: unseen ids route to the surrounding chunk. *)
  Alcotest.(check int) "below everything" 0 (Partition.site_of_range p (-100));
  Alcotest.(check int) "between 5 and 7" 1 (Partition.site_of_range p 6);
  Alcotest.(check int) "above everything" 3 (Partition.site_of_range p 1000);
  Alcotest.(check int) "bounds length" 4 (Array.length (Partition.range_bounds p));
  Alcotest.(check int) "first bound open" min_int (Partition.range_bounds p).(0);
  (* Non-range partitions refuse range routing. *)
  (match Partition.site_of_range (Partition.round_robin ~ids ~sites:2) 3 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument");
  (* More sites than ids still places everything. *)
  let tiny = Partition.by_range ~ids:[ 42 ] ~sites:4 in
  Alcotest.(check (option int)) "single id placed" (Some 0) (Partition.site_of tiny 42)

let () =
  Alcotest.run "cactis-dist"
    [
      ( "partition",
        [
          Alcotest.test_case "total placement" `Quick test_placement_total;
          Alcotest.test_case "usage colocates communities" `Quick test_usage_placement_colocates;
          Alcotest.test_case "usage beats striping" `Quick test_usage_beats_striping;
          Alcotest.test_case "single site" `Quick test_single_site_no_traffic;
          Alcotest.test_case "random deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "by_range sharding" `Quick test_by_range;
        ] );
    ]
