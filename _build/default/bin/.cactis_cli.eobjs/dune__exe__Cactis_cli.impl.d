bin/cactis_cli.ml: Arg Cactis Cactis_apps Cactis_ddl Cmd Cmdliner Fun List Printf Script String Term
