(** Dependency explanation.

    [tree db id attr] materializes the dependency tree that produced a
    derived attribute's current value: each node carries the attribute's
    value, its up-to-date state, and the sources it was computed from
    (with transmission aliases resolved).  Shared sub-derivations are
    expanded once and referenced afterwards, so the output stays linear
    in the size of the dependency subgraph.

    This is a diagnostic view: building it neither evaluates anything
    (stale nodes are reported stale with their cached values) nor
    disturbs importance or usage statistics. *)

type node = {
  id : int;
  attr : string;
  value : Value.t;  (** cached value (may be stale) *)
  fresh : bool;  (** up to date? *)
  kind : [ `Intrinsic | `Derived | `Shared ];
      (** [`Shared]: already expanded elsewhere in this tree *)
  via : string option;  (** relationship crossed to reach this node *)
  children : node list;
}

(** [tree db id attr] — the explanation rooted at (id, attr).
    @raise Errors.Unknown for unknown instance/attribute. *)
val tree : Db.t -> int -> string -> node

(** [render db id attr] — human-readable indented rendering. *)
val render : Db.t -> int -> string -> string
