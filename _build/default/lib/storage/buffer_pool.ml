(* LRU implemented as a doubly-linked list of frames plus a hash index.
   The list head is the most recently used frame. *)

type frame = {
  block : int;
  mutable prev : frame option;
  mutable next : frame option;
}

type t = {
  cap : int;
  disk : Disk.t;
  index : (int, frame) Hashtbl.t;
  mutable head : frame option;
  mutable tail : frame option;
  mutable count : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  {
    cap = capacity;
    disk;
    index = Hashtbl.create 64;
    head = None;
    tail = None;
    count = 0;
    hit_count = 0;
    miss_count = 0;
  }

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.next <- t.head;
  f.prev <- None;
  (match t.head with Some h -> h.prev <- Some f | None -> t.tail <- Some f);
  t.head <- Some f

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some f ->
    unlink t f;
    Hashtbl.remove t.index f.block;
    t.count <- t.count - 1

let touch t block =
  match Hashtbl.find_opt t.index block with
  | Some f ->
    t.hit_count <- t.hit_count + 1;
    unlink t f;
    push_front t f;
    `Hit
  | None ->
    t.miss_count <- t.miss_count + 1;
    Disk.read t.disk;
    if t.count >= t.cap then evict_lru t;
    let f = { block; prev = None; next = None } in
    Hashtbl.add t.index block f;
    push_front t f;
    t.count <- t.count + 1;
    `Miss

let resident t block = Hashtbl.mem t.index block

let contents t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some f -> walk (f.block :: acc) f.next
  in
  walk [] t.head

let capacity t = t.cap
let hits t = t.hit_count
let misses t = t.miss_count

let flush t =
  Hashtbl.reset t.index;
  t.head <- None;
  t.tail <- None;
  t.count <- 0

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0
