let header_len = 4
let max_payload = 16 * 1024 * 1024

exception Too_large of int
exception Truncated of { expected : int; got : int }

let check_len n = if n > max_payload then raise (Too_large n)

let encode payload =
  let n = String.length payload in
  check_len n;
  let b = Bytes.create (header_len + n) in
  Bytes.set_int32_be b 0 (Int32.of_int n);
  Bytes.blit_string payload 0 b header_len n;
  Bytes.unsafe_to_string b

(* Big-endian u32 at [off]; lengths are bounded by [max_payload] so the
   Int32 round-trip is lossless. *)
let be32 s off =
  let v = Int32.to_int (String.get_int32_be s off) in
  if v < 0 then raise (Too_large max_int);
  v

(* ---- Blocking I/O ---- *)

let rec restart f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> restart f

(* Writes also serve non-blocking descriptors (the server's worker
   domains reply on fds its event loop reads from): on EAGAIN, wait for
   writability and retry. *)
let rec write_chunk fd s off len =
  match Unix.write_substring fd s off len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_chunk fd s off len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    ignore (restart (fun () -> Unix.select [] [ fd ] [] (-1.0)));
    write_chunk fd s off len

let send fd payload =
  let s = encode payload in
  let len = String.length s in
  let off = ref 0 in
  while !off < len do
    off := !off + write_chunk fd s !off (len - !off)
  done

(* Reads exactly [n] bytes; [None] on EOF before the first byte. *)
let read_exactly fd n =
  let b = Bytes.create n in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < n do
    let r = restart (fun () -> Unix.read fd b !got (n - !got)) in
    if r = 0 then eof := true else got := !got + r
  done;
  if !got = n then Some (Bytes.unsafe_to_string b)
  else if !got = 0 then None
  else raise (Truncated { expected = n; got = !got })

let recv fd =
  match read_exactly fd header_len with
  | None -> None
  | Some hdr ->
    let n = be32 hdr 0 in
    check_len n;
    if n = 0 then Some ""
    else begin
      match read_exactly fd n with
      | Some payload -> Some payload
      | None -> raise (Truncated { expected = n; got = 0 })
    end

(* ---- Incremental decoding ---- *)

type decoder = {
  buf : Buffer.t;
  mutable off : int;  (* consumed prefix of [buf] *)
}

let decoder () = { buf = Buffer.create 4096; off = 0 }
let feed d s = Buffer.add_string d.buf s
let buffered d = Buffer.length d.buf - d.off

(* Drop the consumed prefix once it dominates the buffer, so a
   long-lived connection doesn't grow without bound. *)
let compact d =
  if d.off > 65536 && d.off * 2 > Buffer.length d.buf then begin
    let rest = Buffer.sub d.buf d.off (Buffer.length d.buf - d.off) in
    Buffer.clear d.buf;
    Buffer.add_string d.buf rest;
    d.off <- 0
  end

let next d =
  let avail = buffered d in
  if avail < header_len then None
  else begin
    let n = be32 (Buffer.sub d.buf d.off header_len) 0 in
    check_len n;
    if avail - header_len < n then None
    else begin
      let payload = Buffer.sub d.buf (d.off + header_len) n in
      d.off <- d.off + header_len + n;
      compact d;
      Some payload
    end
  end
