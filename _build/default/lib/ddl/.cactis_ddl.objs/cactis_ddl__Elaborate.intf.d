lib/ddl/elaborate.mli: Ast Cactis
