# Convenience targets; everything is plain dune underneath.

.PHONY: all build check test format-compat lint analyze bench bench-fast bench-json bench-persist bench-cluster bench-cluster-smoke bench-qps bench-qps-smoke bench-flight bench-flight-smoke bench-analyze bench-analyze-smoke bench-repl bench-repl-smoke stats trace examples clean

# Output path for the machine-readable experiment record; override with
# `make bench-json BENCH_JSON=BENCH_1.json` to regenerate earlier runs.
BENCH_JSON ?= BENCH_3.json

# Schema/script pair driven by `make stats` / `make trace`; override to
# inspect your own workload.
OBS_SCHEMA ?= examples/schemas/milestones.cactis
OBS_SCRIPT ?= examples/schemas/project.script
TRACE_JSON ?= trace.json

all: build

build:
	dune build @all

# Everything CI needs: full build, full test suite (which includes the
# schema-versioning suite and its on-disk format-compat fixture check),
# an explicit format-compat pass, and a fast pass over every experiment
# to catch harness regressions.
check:
	dune build @all
	dune runtest --force
	$(MAKE) format-compat
	dune exec bench/main.exe -- --fast

test:
	dune runtest --force

# On-disk format compatibility: recover the committed legacy CWAL2
# fixture under the current CWAL3 reader and compare against the
# recorded recovery output (test/fixtures/cwal2/expected.json).
format-compat:
	dune exec test/test_schema_versioning.exe -- test "format compat"

# Static schema analysis over every shipped .cactis schema plus the
# built-in application schemas.  Fails on error-severity findings only;
# add `LINT_FLAGS=--strict` to fail on warnings too.
LINT_FLAGS ?=
lint:
	dune exec bin/cactis_cli.exe -- lint $(LINT_FLAGS) --apps \
	  $(shell find examples lib -name '*.cactis')

# Abstract interpretation over the shipped example schemas: run the
# cost/convergence analyzer and compare its JSON against the committed
# goldens in test/golden/analyze/ (fails on drift — regenerate the
# golden on an intentional change and commit both).
analyze:
	@set -e; \
	for s in examples/schemas/*.cactis; do \
	  name=$$(basename $$s .cactis); \
	  dune exec bin/cactis_cli.exe -- analyze $$s --json \
	    | diff -u test/golden/analyze/$$name.json - \
	    || { echo "analyze golden drift for $$s"; exit 1; }; \
	  echo "analyze golden ok: $$s"; \
	done

bench:
	dune exec bench/main.exe

bench-fast:
	dune exec bench/main.exe -- --fast

# Full experiment run with machine-readable output in $(BENCH_JSON).
bench-json:
	dune exec bench/main.exe -- --json $(BENCH_JSON)

# Just the persistence experiments (binary snapshots + write-ahead log).
bench-persist:
	dune exec bench/main.exe -- E14

# Clustering shoot-out on a real block file (E16): per-strategy block
# reads, buffer hit rate and wall time, plus the incremental-maintenance
# disruption table.  The full run records its results in
# $(CLUSTER_JSON); the smoke variant is the CI gate.
CLUSTER_JSON ?= BENCH_4.json
bench-cluster:
	dune exec bench/main.exe -- E16 --json $(CLUSTER_JSON)

bench-cluster-smoke:
	dune exec bench/main.exe -- --fast E16

# Multi-client QPS over TCP (E17): 4 client processes against the
# domain-parallel server at 1/2/4 reader domains.  The full run records
# $(QPS_JSON); the smoke variant is the CI gate (the >=2x scaling
# assertion arms itself only on machines with >=4 cores).
QPS_JSON ?= BENCH_5.json
bench-qps:
	dune exec bench/main.exe -- E17 --json $(QPS_JSON)

bench-qps-smoke:
	dune exec bench/main.exe -- --fast E17

# Flight-recorder overhead (E18): the E13 incremental workload with the
# ring recording vs switched off.  Counters must be bit-identical; the
# full run also gates cpu overhead at 5% (the smoke variant measures a
# run too short to judge and skips the gate).
FLIGHT_JSON ?= BENCH_6.json
bench-flight:
	dune exec bench/main.exe -- E18 --json $(FLIGHT_JSON)

bench-flight-smoke:
	dune exec bench/main.exe -- --fast E18

# Cost/convergence analysis + bounded fixed-point evaluation (E19): the
# per-attribute cost tables, the instance-count invariance measurement,
# and flowan While-loop CFGs run to a proven fixed point with the sweep
# count gated by the static iteration bound.  The full run records
# $(ANALYZE_JSON); the smoke variant is the CI gate.
ANALYZE_JSON ?= BENCH_7.json
bench-analyze:
	dune exec bench/main.exe -- E19 --json $(ANALYZE_JSON)

bench-analyze-smoke:
	dune exec bench/main.exe -- --fast E19

# WAL-shipping replication (E20): a writer ships its commit log to two
# live followers plus a late follower that measures snapshot-bootstrap
# catch-up; the gate requires byte-identical snapshot digests, a clean
# integrity audit and zero sequence gaps on every replica.  The full
# run records $(REPL_JSON); the smoke variant is the CI gate.
REPL_JSON ?= BENCH_8.json
bench-repl:
	dune exec bench/main.exe -- E20 --json $(REPL_JSON)

bench-repl-smoke:
	dune exec bench/main.exe -- --fast E20

# Run $(OBS_SCRIPT) and report counters, latency histograms and the last
# commit's propagation profile (evaluated-at-most-once check included).
stats:
	dune exec bin/cactis_cli.exe -- stats $(OBS_SCHEMA) $(OBS_SCRIPT)

# Run $(OBS_SCRIPT) with the span tracer on and export $(TRACE_JSON),
# loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
trace:
	dune exec bin/cactis_cli.exe -- trace $(OBS_SCHEMA) $(OBS_SCRIPT) -o $(TRACE_JSON)

examples:
	dune exec examples/quickstart.exe
	dune exec examples/milestones.exe
	dune exec examples/make_tool.exe
	dune exec examples/flow_analysis.exe
	dune exec examples/versions_demo.exe
	dune exec examples/software_env.exe

clean:
	dune clean
