(* LRU implemented as a doubly-linked list of frames plus a flat index
   by block number (blocks are small dense ints).  The list head is the
   most recently used frame. *)

type frame = {
  block : int;
  mutable prev : frame option;
  mutable next : frame option;
}

type t = {
  cap : int;
  disk : Disk.t;
  mutable index : frame option array;  (* by block number *)
  mutable head : frame option;
  mutable tail : frame option;
  mutable count : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ~capacity disk =
  if capacity < 1 then invalid_arg "Buffer_pool.create: capacity must be >= 1";
  {
    cap = capacity;
    disk;
    index = Array.make 64 None;
    head = None;
    tail = None;
    count = 0;
    hit_count = 0;
    miss_count = 0;
  }

let ensure t block =
  let n = Array.length t.index in
  if block >= n then begin
    let bigger = Array.make (max (block + 1) (2 * n)) None in
    Array.blit t.index 0 bigger 0 n;
    t.index <- bigger
  end

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.next <- t.head;
  f.prev <- None;
  (match t.head with Some h -> h.prev <- Some f | None -> t.tail <- Some f);
  t.head <- Some f

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some f ->
    unlink t f;
    t.index.(f.block) <- None;
    t.count <- t.count - 1

let touch t block =
  ensure t block;
  match t.index.(block) with
  | Some f ->
    t.hit_count <- t.hit_count + 1;
    (match t.head with
    | Some h when h == f -> ()  (* already most recent: skip the relink *)
    | _ ->
      unlink t f;
      push_front t f);
    `Hit
  | None ->
    t.miss_count <- t.miss_count + 1;
    Disk.read t.disk;
    if t.count >= t.cap then evict_lru t;
    let f = { block; prev = None; next = None } in
    t.index.(block) <- Some f;
    push_front t f;
    t.count <- t.count + 1;
    `Miss

let resident t block = block < Array.length t.index && t.index.(block) <> None

let contents t =
  let rec walk acc = function
    | None -> List.rev acc
    | Some f -> walk (f.block :: acc) f.next
  in
  walk [] t.head

let capacity t = t.cap
let hits t = t.hit_count
let misses t = t.miss_count

let flush t =
  Array.fill t.index 0 (Array.length t.index) None;
  t.head <- None;
  t.tail <- None;
  t.count <- 0

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0
