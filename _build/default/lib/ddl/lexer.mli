(** Hand-written lexer for the DDL.

    Comments run from [--] or [//] to end of line, and between [/*] and
    [*/] (nesting not supported, as in C). *)

exception Error of { line : int; col : int; message : string }

type located = {
  token : Token.t;
  line : int;
  col : int;
}

(** [tokenize src] lexes the whole input, ending with an [EOF] token.
    @raise Error on malformed input. *)
val tokenize : string -> located list
