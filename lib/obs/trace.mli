(** Span/event tracer.

    A fixed-capacity ring buffer of timestamped events over the
    monotonic clock.  The tracer starts {e disabled}: every recording
    entry point checks one boolean first, so instrumented hot paths pay
    a single load-and-branch when tracing is off.  When the ring fills,
    the oldest events are overwritten (and counted as dropped) — tracing
    never allocates without bound and never fails.

    Exported traces use the Chrome trace-event JSON format, loadable in
    Perfetto or chrome://tracing: spans become ["X"] (complete) events,
    instants become ["i"] events. *)

(** Structured span/instant arguments (rendered into the JSON [args]
    object). *)
type arg =
  | S of string
  | I of int
  | F of float
  | B of bool

type event = {
  ev_name : string;
  ev_cat : string;  (** Chrome category, e.g. ["engine"], ["txn"], ["wal"] *)
  ev_instant : bool;
  ev_ts : float;  (** microseconds since tracer creation *)
  ev_dur : float;  (** microseconds; 0 for instants *)
  ev_tid : int;  (** recording domain's id — its Perfetto track *)
  ev_args : (string * arg) list;
}

type t

(** [create ?capacity ()] — a disabled tracer holding up to [capacity]
    events (default 65536). *)
val create : ?capacity:int -> unit -> t

val enable : t -> unit
val disable : t -> unit
val enabled : t -> bool

(** [name_thread t name] labels the calling domain's track in the
    exported trace (a ["thread_name"] metadata event; multi-domain
    traces render as separate named tracks in Perfetto).  Unnamed
    domains export as ["domain-N"]. *)
val name_thread : t -> string -> unit

(** Total events recorded since creation/[clear] (including any that
    have since been overwritten). *)
val recorded : t -> int

(** Events lost to ring wrap-around. *)
val dropped : t -> int

(** Drop all buffered events (keeps the enabled flag). *)
val clear : t -> unit

(** Monotonic reading for a span start (see {!complete}). *)
val now_ns : unit -> int64

(** [complete t ~start_ns name] records a span that began at [start_ns]
    and ends now.  No-op when disabled. *)
val complete :
  t -> ?cat:string -> ?args:(string * arg) list -> start_ns:int64 -> string -> unit

(** [instant t name] records a zero-duration event.  No-op when
    disabled. *)
val instant : t -> ?cat:string -> ?args:(string * arg) list -> string -> unit

(** [span t name f] runs [f] inside a span (recorded even if [f]
    raises).  When disabled, runs [f] with no overhead beyond the
    flag check. *)
val span : t -> ?cat:string -> ?args:(string * arg) list -> string -> (unit -> 'a) -> 'a

(** Buffered events, oldest first. *)
val events : t -> event list

(** Chrome trace-event JSON ({["traceEvents"]} array object). *)
val to_chrome_json : t -> string
