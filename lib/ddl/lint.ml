module View = Cactis_analysis.View
module Diag = Cactis_analysis.Diag
module Analyze = Cactis_analysis.Analyze
module Schema = Cactis.Schema

let attr_of_decl (d : Ast.attr_decl) =
  {
    View.a_name = d.Ast.ad_name;
    a_intrinsic = true;
    a_constrained = false;
    a_sources = [];
    a_shape = None;
    a_ops = 0;
  }

let attr_of_rule (d : Ast.rule_decl) =
  {
    View.a_name = d.Ast.ru_name;
    a_intrinsic = false;
    a_constrained = false;
    a_sources = Elaborate.sources d.Ast.ru_expr;
    a_shape = Some (Elaborate.shape_of_expr d.Ast.ru_expr);
    a_ops = Elaborate.op_count d.Ast.ru_expr;
  }

let attr_of_constraint (d : Ast.constraint_decl) =
  {
    View.a_name = d.Ast.cd_name;
    a_intrinsic = false;
    a_constrained = true;
    a_sources = Elaborate.sources d.Ast.cd_expr;
    a_shape = Some (Elaborate.shape_of_expr d.Ast.cd_expr);
    a_ops = Elaborate.op_count d.Ast.cd_expr;
  }

let view_of_ast (items : Ast.schema) =
  let classes = List.filter_map (function Ast.Class c -> Some c | Ast.Subtype _ -> None) items in
  let subtypes = List.filter_map (function Ast.Subtype s -> Some s | Ast.Class _ -> None) items in
  let vtypes =
    classes
    |> List.map (fun (cl : Ast.class_def) ->
           let subs =
             List.filter (fun (s : Ast.subtype_def) -> String.equal s.Ast.su_parent cl.Ast.cl_name) subtypes
           in
           let sub_attrs =
             subs
             |> List.concat_map (fun (su : Ast.subtype_def) ->
                    {
                      View.a_name = Schema.membership_attr su.Ast.su_name;
                      a_intrinsic = false;
                      a_constrained = false;
                      a_sources = Elaborate.sources su.Ast.su_predicate;
                      a_shape = Some (Elaborate.shape_of_expr su.Ast.su_predicate);
                      a_ops = Elaborate.op_count su.Ast.su_predicate;
                    }
                    :: (List.map attr_of_decl su.Ast.su_attrs @ List.map attr_of_rule su.Ast.su_rules))
           in
           {
             View.t_name = cl.Ast.cl_name;
             t_attrs =
               List.map attr_of_decl cl.Ast.cl_attrs
               @ List.map attr_of_rule cl.Ast.cl_rules
               @ List.map attr_of_constraint cl.Ast.cl_constraints
               @ sub_attrs;
             t_rels =
               List.map
                 (fun (r : Ast.rel_decl) ->
                   {
                     View.r_name = r.Ast.rd_name;
                     r_target = r.Ast.rd_target;
                     r_inverse = r.Ast.rd_inverse;
                     r_card = (match r.Ast.rd_card with `One -> Schema.One | `Multi -> Schema.Multi);
                   })
                 cl.Ast.cl_rels;
             t_exports =
               List.map
                 (fun (t : Ast.transmit_decl) -> ((t.Ast.tr_rel, t.Ast.tr_export), t.Ast.tr_attr))
                 cl.Ast.cl_transmits;
           })
  in
  {
    View.v_types = vtypes;
    v_subtypes = List.map (fun (s : Ast.subtype_def) -> (s.Ast.su_name, s.Ast.su_parent)) subtypes;
  }

(* AST-only checks: duplicates disappear in the view (hash-joined away
   during elaboration they raise), so report them here. *)
let duplicate_diags (items : Ast.schema) =
  let diags = ref [] in
  let seen_dup tbl key =
    if Hashtbl.mem tbl key then true
    else begin
      Hashtbl.add tbl key ();
      false
    end
  in
  let class_names = Hashtbl.create 8 in
  List.iter
    (function
      | Ast.Subtype _ -> ()
      | Ast.Class cl ->
        let cn = cl.Ast.cl_name in
        if seen_dup class_names cn then
          diags :=
            Diag.make Diag.Error ~code:"duplicate-class" ~path:cn
              ~hint:"merge the two declarations or rename one"
              "class declared more than once"
            :: !diags;
        let attr_names = Hashtbl.create 8 in
        let attr name =
          if seen_dup attr_names name then
            diags :=
              Diag.make Diag.Error ~code:"duplicate-attr" ~path:(cn ^ "." ^ name)
                ~hint:"attributes, rules and constraints share one namespace per class"
                "attribute declared more than once" :: !diags
        in
        List.iter (fun (d : Ast.attr_decl) -> attr d.Ast.ad_name) cl.Ast.cl_attrs;
        List.iter (fun (d : Ast.rule_decl) -> attr d.Ast.ru_name) cl.Ast.cl_rules;
        List.iter (fun (d : Ast.constraint_decl) -> attr d.Ast.cd_name) cl.Ast.cl_constraints;
        let rel_names = Hashtbl.create 4 in
        List.iter
          (fun (r : Ast.rel_decl) ->
            if seen_dup rel_names r.Ast.rd_name then
              diags :=
                Diag.make Diag.Error ~code:"duplicate-rel" ~path:(cn ^ "." ^ r.Ast.rd_name)
                  "relationship declared more than once" :: !diags)
          cl.Ast.cl_rels)
    items;
  List.rev !diags

let analyze_ast ?counters (items : Ast.schema) =
  List.stable_sort Diag.compare
    (duplicate_diags items @ Analyze.analyze_view ?counters (view_of_ast items))

let typecheck_diags (items : Ast.schema) =
  Typecheck.check items
  |> List.map (fun msg -> Diag.make Diag.Error ~code:"type" ~path:"schema" msg)
