(** Static schema analysis: pass pipeline over the type-level attribute
    dependency graph ({!Depgraph}).

    Passes:

    - {b circularity} — the attribute-grammar circularity test.  Each
      strongly connected component yields one diagnostic with a concrete
      witness cycle.  Severity is decided by {e word reduction} over the
      relationship steps (a relationship and its inverse cancel like a
      generator and its inverse in a free group): a cycle whose word
      reduces to the empty word is realizable on acyclic — even
      single-link — data, so it is an {e error}; an irreducible word
      needs a data cycle along the residual relationships, which Cactis
      already rejects dynamically, so it is a {e warning} carrying the
      relationship set that must stay acyclic.  Pure [Self] cycles (no
      relationship step at all) cycle on every instance: error.
    - {b dead-attr} — derived attributes nothing in the schema depends
      on: no constraint, no transmission alias, no reading rule or
      subtype predicate (info: an application may still query them).
    - {b dangling} — rules reading undeclared attributes or
      relationships, transmissions of undeclared attributes,
      relationship targets/inverses that do not resolve, subtypes of
      unknown parents.
    - {b constraint lint} — constraints whose transitive input cone
      contains no intrinsic attribute: vacuously constant when the cone
      also never crosses a relationship (warning), link-topology-only
      otherwise (info).

    Analysis cost is observable: pass [?counters] (e.g. a database's
    registry) and the analyzer bumps [analysis_runs], [analysis_nodes],
    [analysis_edges], [analysis_sccs] and [analysis_diags]. *)

val analyze_view : ?counters:Cactis_util.Counters.t -> View.t -> Diag.t list

val analyze_schema : ?counters:Cactis_util.Counters.t -> Cactis.Schema.t -> Diag.t list

(** Render a diagnostic list as compiler-style text, one finding per
    paragraph, followed by a summary line.  Empty string for []. *)
val render : Diag.t list -> string

(** JSON array of diagnostics. *)
val to_json : Diag.t list -> string

(** [install ()] registers the analyzer as {!Cactis.Schema.set_validator},
    so [Schema.validate] — and every layout refresh of a schema in
    strict mode ({!Cactis.Schema.set_strict}) — rejects schemas carrying
    error-severity diagnostics.

    Re-validation is incremental: when only attributes were added since
    the last clean validation ({!Cactis.Schema.touched_since_validation}),
    only the circularity pass runs, restricted to SCCs containing a
    touched attribute (the one error class such a mutation can
    introduce); an untouched clean schema skips analysis entirely.
    With [?counters], full runs bump [analysis_runs] as usual while the
    cheap paths bump [analysis_incremental_runs] /
    [analysis_validation_skips], so the saving is observable. *)
val install : ?counters:Cactis_util.Counters.t -> unit -> unit
