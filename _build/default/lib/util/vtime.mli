(** Virtual time values.

    The milestone manager and the make facility of the paper (Figures 1-4)
    compute over times: scheduled/expected completion dates, file
    modification times.  To keep the whole system deterministic we never
    consult the wall clock; times are plain values ordered totally, with a
    distinguished [epoch] ("TIME0" in Figure 1) and [far_future] (the
    paper's "time in the distant future if the file does not exist"). *)

type t

val epoch : t

(** A time later than every time producible by [of_days]/[add_days];
    stands in for "file does not exist" in the make facility. *)
val far_future : t

val of_days : float -> t
val to_days : t -> float

val add_days : t -> float -> t

(** [later_of a b] is the later of the two times (Figure 1's [later_of]). *)
val later_of : t -> t -> t

val earlier_of : t -> t -> t

(** [later_than a b] is true iff [a] is strictly after [b] (Figure 1's
    [later_than]). *)
val later_than : t -> t -> bool

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
