(** Clustering strategies: the paper's greedy usage-based packer plus
    competitors from the Darmont & Gruenwald comparison study of OODB
    clustering techniques, behind one interface.

    The paper (Section 2.3) packs the database into blocks as follows:

    {v
    Repeat
      Choose the most referenced instance in the database that has not
      yet been assigned a block
      Place this instance in a new block
      Repeat
        Choose the relationship belonging to some instance assigned to
        the block such that
          (1) the relationship is connected to an unassigned instance
              outside the block, and
          (2) the total usage count for the relationship is the highest
        Assign the instance attached to this relationship to the block
      Until the block is full
    Until all instances are assigned blocks
    v}

    Ties are broken by smaller instance id so every strategy is
    deterministic. *)

type link = {
  a : int;
  b : int;
  rel : string;
  count : int;  (** total usage count for this relationship link *)
}

type assignment = {
  block_of : (int, int) Hashtbl.t;  (** instance id -> block id *)
  block_count : int;
}

(** The competing placement policies (see DESIGN.md §9):
    - [Sequential] — creation (id) order; the unclustered baseline.
    - [Greedy] — the paper's algorithm: hottest instance seeds a block,
      hottest frontier link fills it.
    - [Dstc] — DSTC-style dynamic statistics clustering: hottest links
      agglomerated into block-capped units, units laid out first-fit by
      descending heat.
    - [Bfs_affinity] — static placement-tree order: breadth-first over
      the structural graph, neighbours grouped by relationship name. *)
type strategy =
  | Sequential
  | Greedy
  | Dstc
  | Bfs_affinity

val all_strategies : strategy list
val strategy_name : strategy -> string
val strategy_of_string : string -> strategy option

(** [pack_with strategy ~block_capacity ~instances ~links] dispatches to
    the strategy's packer.  Every strategy assigns each instance of
    [instances] (given with its access count) to exactly one block of at
    most [block_capacity] instances.
    @raise Invalid_argument if [block_capacity < 1]. *)
val pack_with :
  strategy ->
  block_capacity:int ->
  instances:(int * int) list ->
  links:link list ->
  assignment

(** [pack ~block_capacity ~instances ~links] is the paper's greedy
    algorithm ([Greedy]).  [links] should include every structural
    relationship link, with its accumulated crossing count (0 for links
    never traversed) — an instance connected only by cold links is still
    pulled into its neighbour's block before a fresh block is opened for
    it, exactly as in the paper's inner loop.  Heap-based: packing is
    O((V + E) log E), tractable at 100k+ instances.

    @raise Invalid_argument if [block_capacity < 1]. *)
val pack : block_capacity:int -> instances:(int * int) list -> links:link list -> assignment

(** [sequential ~block_capacity ~instances] is the non-clustered baseline:
    instances packed into blocks in id (creation) order.  This is the
    layout the database has before any re-clustering. *)
val sequential : block_capacity:int -> instances:int list -> assignment
