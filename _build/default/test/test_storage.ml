(* Storage substrate tests: disk accounting, LRU buffer pool, pager
   placement, usage statistics, and the paper's greedy clustering
   algorithm (unit + qcheck properties). *)

module Disk = Cactis_storage.Disk
module Buffer_pool = Cactis_storage.Buffer_pool
module Pager = Cactis_storage.Pager
module Usage = Cactis_storage.Usage
module Cluster = Cactis_storage.Cluster

(* ---- Buffer pool ---- *)

let test_pool_hits_and_misses () =
  let disk = Disk.create () in
  let pool = Buffer_pool.create ~capacity:2 disk in
  Alcotest.(check bool) "first touch misses" true (Buffer_pool.touch pool 1 = `Miss);
  Alcotest.(check bool) "second touch hits" true (Buffer_pool.touch pool 1 = `Hit);
  ignore (Buffer_pool.touch pool 2);
  ignore (Buffer_pool.touch pool 3);
  (* capacity 2: block 1 evicted as LRU *)
  Alcotest.(check bool) "1 evicted" false (Buffer_pool.resident pool 1);
  Alcotest.(check bool) "2 resident" true (Buffer_pool.resident pool 2);
  Alcotest.(check bool) "3 resident" true (Buffer_pool.resident pool 3);
  Alcotest.(check int) "reads counted (3 misses)" 3 (Disk.reads disk)

let test_pool_lru_order () =
  let disk = Disk.create () in
  let pool = Buffer_pool.create ~capacity:3 disk in
  List.iter (fun b -> ignore (Buffer_pool.touch pool b)) [ 1; 2; 3 ];
  (* Touch 1 again: now 2 is LRU. *)
  ignore (Buffer_pool.touch pool 1);
  ignore (Buffer_pool.touch pool 4);
  Alcotest.(check bool) "2 evicted (LRU)" false (Buffer_pool.resident pool 2);
  Alcotest.(check (list int)) "MRU order" [ 4; 1; 3 ] (Buffer_pool.contents pool)

let test_pool_flush () =
  let disk = Disk.create () in
  let pool = Buffer_pool.create ~capacity:4 disk in
  List.iter (fun b -> ignore (Buffer_pool.touch pool b)) [ 1; 2 ];
  Buffer_pool.flush pool;
  Alcotest.(check (list int)) "empty after flush" [] (Buffer_pool.contents pool);
  Alcotest.(check int) "stats kept" 2 (Buffer_pool.misses pool);
  Buffer_pool.reset_stats pool;
  Alcotest.(check int) "stats reset" 0 (Buffer_pool.misses pool)

let prop_pool_capacity =
  QCheck.Test.make ~name:"pool never exceeds capacity" ~count:200
    QCheck.(pair (int_range 1 8) (list (int_range 0 20)))
    (fun (cap, touches) ->
      let pool = Buffer_pool.create ~capacity:cap (Disk.create ()) in
      List.iter (fun b -> ignore (Buffer_pool.touch pool b)) touches;
      List.length (Buffer_pool.contents pool) <= cap)

let prop_pool_immediate_rehit =
  QCheck.Test.make ~name:"touching a just-touched block hits" ~count:200
    QCheck.(pair (int_range 1 8) (list (int_range 0 20)))
    (fun (cap, touches) ->
      let pool = Buffer_pool.create ~capacity:cap (Disk.create ()) in
      List.for_all
        (fun b ->
          ignore (Buffer_pool.touch pool b);
          Buffer_pool.touch pool b = `Hit)
        touches)

(* ---- Pager ---- *)

let test_pager_placement () =
  let pager = Pager.create ~block_capacity:2 ~buffer_capacity:8 () in
  List.iter (Pager.register pager) [ 10; 11; 12; 13; 14 ];
  Alcotest.(check (option int)) "10 on block 0" (Some 0) (Pager.block_of pager 10);
  Alcotest.(check (option int)) "11 on block 0" (Some 0) (Pager.block_of pager 11);
  Alcotest.(check (option int)) "12 on block 1" (Some 1) (Pager.block_of pager 12);
  Alcotest.(check (option int)) "14 on block 2" (Some 2) (Pager.block_of pager 14);
  ignore (Pager.touch pager 10);
  Alcotest.(check bool) "11 shares 10's block" true (Pager.resident pager 11);
  Alcotest.(check bool) "12 not resident" false (Pager.resident pager 12)

let test_pager_clustering_applied () =
  let pager = Pager.create ~block_capacity:2 ~buffer_capacity:8 () in
  List.iter (Pager.register pager) [ 1; 2; 3; 4 ];
  let assignment =
    Cluster.pack ~block_capacity:2
      ~instances:[ (1, 10); (2, 1); (3, 9); (4, 1) ]
      ~links:[ { Cluster.a = 1; b = 3; rel = "r"; count = 100 } ]
  in
  Pager.apply_clustering pager assignment;
  (* 1 and 3 are hot and linked: same block now. *)
  Alcotest.(check bool) "hot pair colocated" true (Pager.block_of pager 1 = Pager.block_of pager 3);
  (* New registrations go to fresh blocks. *)
  Pager.register pager 99;
  Alcotest.(check bool) "new instance beyond clustered blocks" true
    (match Pager.block_of pager 99 with Some b -> b >= assignment.Cluster.block_count | None -> false)

(* ---- Usage ---- *)

let test_usage_counts () =
  let u = Usage.create () in
  Usage.touch_instance u 1;
  Usage.touch_instance u 1;
  Usage.cross u ~from_instance:1 ~rel:"r" ~to_instance:2;
  Usage.cross u ~from_instance:2 ~rel:"r" ~to_instance:1;
  Alcotest.(check int) "instance count" 2 (Usage.instance_count u 1);
  Alcotest.(check int) "crossing symmetric" 2
    (Usage.crossing_count u ~from_instance:1 ~rel:"r" ~to_instance:2);
  Usage.forget_instance u 1;
  Alcotest.(check int) "forgotten" 0 (Usage.instance_count u 1);
  Alcotest.(check int) "crossings forgotten" 0
    (Usage.crossing_count u ~from_instance:1 ~rel:"r" ~to_instance:2)

(* ---- Clustering ---- *)

let test_cluster_paper_algorithm () =
  (* Two hot communities and a cold singleton: the greedy algorithm must
     seed with the hottest instance and pull its linked neighbours in. *)
  let instances = [ (1, 100); (2, 5); (3, 90); (4, 5); (5, 1) ] in
  let links =
    [
      { Cluster.a = 1; b = 2; rel = "r"; count = 50 };
      { Cluster.a = 3; b = 4; rel = "r"; count = 40 };
      { Cluster.a = 2; b = 5; rel = "r"; count = 0 };
    ]
  in
  let { Cluster.block_of; block_count } = Cluster.pack ~block_capacity:2 ~instances ~links in
  let b = Hashtbl.find block_of in
  Alcotest.(check int) "hottest seeds block 0" 0 (b 1);
  Alcotest.(check int) "its partner joins" 0 (b 2);
  Alcotest.(check int) "second community next" 1 (b 3);
  Alcotest.(check int) "partner too" 1 (b 4);
  Alcotest.(check int) "cold singleton last" 2 (b 5);
  Alcotest.(check int) "three blocks" 3 block_count

let test_cluster_pulls_cold_neighbour () =
  (* A zero-count link still pulls an unassigned neighbour into the block
     before a new block is opened (the paper's inner loop has no
     threshold). *)
  let instances = [ (1, 10); (2, 0) ] in
  let links = [ { Cluster.a = 1; b = 2; rel = "r"; count = 0 } ] in
  let { Cluster.block_of; block_count } = Cluster.pack ~block_capacity:4 ~instances ~links in
  Alcotest.(check int) "one block" 1 block_count;
  Alcotest.(check int) "cold neighbour packed" 0 (Hashtbl.find block_of 2)

let test_cluster_sequential () =
  let { Cluster.block_of; block_count } =
    Cluster.sequential ~block_capacity:3 ~instances:[ 5; 1; 9; 2; 7 ]
  in
  Alcotest.(check int) "two blocks" 2 block_count;
  Alcotest.(check int) "id order" 0 (Hashtbl.find block_of 1);
  Alcotest.(check int) "spill" 1 (Hashtbl.find block_of 7)

let cluster_input =
  QCheck.make
    ~print:(fun (n, cap, links) ->
      Printf.sprintf "n=%d cap=%d links=%d" n cap (List.length links))
    QCheck.Gen.(
      let* n = int_range 1 40 in
      let* cap = int_range 1 8 in
      let* links =
        list_size (int_range 0 80)
          (let* a = int_range 0 (n - 1) in
           let* b = int_range 0 (n - 1) in
           let* c = int_range 0 100 in
           return (a, b, c))
      in
      return (n, cap, links))

let prop_cluster_partition =
  QCheck.Test.make ~name:"clustering is a capacity-respecting partition" ~count:300 cluster_input
    (fun (n, cap, raw_links) ->
      let instances = List.init n (fun i -> (i, (i * 7) mod 23)) in
      let links =
        List.filter_map
          (fun (a, b, c) ->
            if a = b then None else Some { Cluster.a; b; rel = "r"; count = c })
          raw_links
      in
      let { Cluster.block_of; block_count } = Cluster.pack ~block_capacity:cap ~instances ~links in
      (* Total: every instance assigned exactly once. *)
      Hashtbl.length block_of = n
      && List.for_all (fun (i, _) -> Hashtbl.mem block_of i) instances
      (* Capacity respected. *)
      &&
      let per_block = Hashtbl.create 8 in
      Hashtbl.iter
        (fun _ blk ->
          let r =
            match Hashtbl.find_opt per_block blk with
            | Some r -> r
            | None ->
              let r = ref 0 in
              Hashtbl.add per_block blk r;
              r
          in
          incr r)
        block_of;
      Hashtbl.fold (fun blk r ok -> ok && !r <= cap && blk < block_count) per_block true)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_pool_capacity; prop_pool_immediate_rehit; prop_cluster_partition ]

let () =
  Alcotest.run "cactis-storage"
    [
      ( "buffer-pool",
        [
          Alcotest.test_case "hits and misses" `Quick test_pool_hits_and_misses;
          Alcotest.test_case "LRU order" `Quick test_pool_lru_order;
          Alcotest.test_case "flush" `Quick test_pool_flush;
        ] );
      ( "pager",
        [
          Alcotest.test_case "placement" `Quick test_pager_placement;
          Alcotest.test_case "clustering applied" `Quick test_pager_clustering_applied;
        ] );
      ("usage", [ Alcotest.test_case "counts" `Quick test_usage_counts ]);
      ( "clustering",
        [
          Alcotest.test_case "paper algorithm" `Quick test_cluster_paper_algorithm;
          Alcotest.test_case "cold neighbour pulled" `Quick test_cluster_pulls_cold_neighbour;
          Alcotest.test_case "sequential baseline" `Quick test_cluster_sequential;
        ] );
      ("properties", qcheck_cases);
    ]
