(* Process-wide interner.  Symbols are never freed: the population is
   bounded by the number of distinct attribute/relationship names across
   all live schemas, which is tiny compared to instance data. *)

let table : (string, int) Hashtbl.t = Hashtbl.create 256
let names = ref (Array.make 256 "")
let used = ref 0

let intern s =
  match Hashtbl.find_opt table s with
  | Some i -> i
  | None ->
    let i = !used in
    if i = Array.length !names then begin
      let bigger = Array.make (2 * i) "" in
      Array.blit !names 0 bigger 0 i;
      names := bigger
    end;
    !names.(i) <- s;
    used := i + 1;
    Hashtbl.add table s i;
    i

let find s = Hashtbl.find_opt table s

let name i =
  if i < 0 || i >= !used then invalid_arg "Symbol.name: not a symbol";
  !names.(i)

let count () = !used

(* Packed (instance id, symbol) keys.  20 bits of symbol leaves 42 bits
   of instance id on 64-bit platforms — both far beyond what the store
   can allocate before other structures give out. *)

let sym_bits = 20
let sym_mask = (1 lsl sym_bits) - 1
let pack id sym = (id lsl sym_bits) lor sym
let pack_id key = key lsr sym_bits
let pack_sym key = key land sym_mask
