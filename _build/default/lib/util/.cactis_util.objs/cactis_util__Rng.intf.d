lib/util/rng.mli:
