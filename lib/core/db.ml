module Counters = Cactis_util.Counters
module Clock = Cactis_obs.Clock
module Trace = Cactis_obs.Trace
module Histogram = Cactis_obs.Histogram
module Profile = Cactis_obs.Profile
module Flight = Cactis_obs.Flight

(* Committed deltas form a tree: undoing back and committing again grows
   a sibling branch instead of discarding the old one ("the ability to
   manipulate versions and version streams as objects", §3).  [head] is
   the node whose state the database currently holds; the root (None
   parent chain terminator) is the initial empty database. *)
type vnode = {
  vid : int;
  delta : Txn.delta;
  parent : vnode option;
  depth : int;
}

(* Incremental re-clustering maintenance, armed by
   [set_auto_recluster]: when usage drift since the last plan crosses
   [drift_threshold], a migration plan is computed, and every commit
   thereafter applies at most [max_moves] moves until it drains. *)
type auto_recluster = {
  ar_strategy : Cactis_storage.Cluster.strategy;
  drift_threshold : int;
  max_moves : int;
  mutable last_touches : int;  (* instance_touches when the last plan was cut *)
}

type t = {
  sch : Schema.t;
  st : Store.t;
  eng : Engine.t;
  mutable current : Txn.op list option;  (* open txn log, newest op first *)
  mutable head : vnode option;  (* None = initial state *)
  mutable redo_stack : vnode list;  (* nodes stepped back from, nearest first *)
  mutable next_vid : int;
  tag_tbl : (string, vnode option) Hashtbl.t;
  h_commit : Histogram.h;
  h_recluster_step : Histogram.h;
  h_recluster_plan : Histogram.h;
  mutable auto : auto_recluster option;
  mutable profiling : bool;  (* arm a fresh propagation profile per commit *)
  mutable last_profile : Profile.snapshot option;
  mutable commit_hook : (Txn.delta -> unit) option;
      (* durability observer (see Persist): called with every delta the
         database state moves across — commits, undos (inverted), redos
         and checkout steps — so a write-ahead log replays to the same
         state. *)
  mutable baseline_schema_ops : Txn.op list;
      (* schema deltas already folded into the code-supplied schema this
         database was created with (loaded from a snapshot's schema
         section, oldest first).  The database's schema version is the
         count of these plus the schema ops on the root->head path. *)
}

let create ?block_capacity ?buffer_capacity ?disk_path ?disk_block_bytes ?strategy ?sched sch =
  let st = Store.create ?block_capacity ?buffer_capacity ?disk_path ?disk_block_bytes sch in
  let eng = Engine.create ?strategy ?sched st in
  let t =
    {
      sch;
      st;
      eng;
      current = None;
      head = None;
      redo_stack = [];
      next_vid = 1;
      tag_tbl = Hashtbl.create 8;
      h_commit = Histogram.cell (Store.obs st).Cactis_obs.Ctx.hists "commit";
      h_recluster_step = Histogram.cell (Store.obs st).Cactis_obs.Ctx.hists "recluster_step";
      h_recluster_plan = Histogram.cell (Store.obs st).Cactis_obs.Ctx.hists "recluster_plan";
      auto = None;
      profiling = false;
      last_profile = None;
      commit_hook = None;
      baseline_schema_ops = [];
    }
  in
  (* Recovery actions repair constraints through the logged primitive
     layer so their effects participate in rollback. *)
  Engine.set_repair eng (fun id attr v ->
      let def = Schema.attr sch ~type_name:(Store.get st id).Instance.type_name attr in
      match def.Schema.kind with
      | Schema.Intrinsic _ ->
        let slot = Store.read_slot st id attr in
        let old = slot.Instance.value in
        if not (Value.equal old v) then begin
          Store.write_value st id attr v;
          (match t.current with
          | Some ops -> t.current <- Some (Txn.Set_intrinsic { id; attr; old_value = old; new_value = v } :: ops)
          | None -> ());
          Engine.after_intrinsic_set eng id attr
        end
      | Schema.Derived _ ->
        Errors.type_error "recovery action writes derived attribute %s of %d" attr id);
  t

let schema t = t.sch
let store t = t.st
let engine t = t.eng
let counters t = Store.counters t.st
let obs t = Store.obs t.st
let tracer t = (Store.obs t.st).Cactis_obs.Ctx.trace

let set_tracing t on =
  let tr = tracer t in
  if on then Trace.enable tr else Trace.disable tr

let set_fixed_point ?max_iters t on = Engine.set_fixed_point ?max_iters t.eng on
let fixed_point t = Engine.fixed_point t.eng

let set_profiling t on =
  t.profiling <- on;
  if not on then Engine.set_profile t.eng None

let last_profile t = t.last_profile

(* Capture and disarm the per-commit profile (both commit outcomes). *)
let harvest_profile t =
  match Engine.profile t.eng with
  | Some p ->
    t.last_profile <- Some (Profile.snapshot p);
    Engine.set_profile t.eng None
  | None -> ()

let set_commit_hook t hook = t.commit_hook <- hook
let commit_hook t = t.commit_hook

let notify_hook t delta =
  match t.commit_hook with None -> () | Some f -> f delta

(* ------------------------------------------------------------------ *)
(* Schema deltas

   A schema mutation is an ordinary transaction op: applying it mutates
   the live schema and initializes fresh slots on existing instances;
   retracting it (the inverse, reached through undo/checkout) purges the
   engine's per-attribute bookkeeping and pops the declaration.  Because
   deltas replay in exact reverse order, a retraction always targets the
   newest declaration of its kind (Schema enforces this), so slot/link
   indexes of surviving attributes never move. *)

let apply_schema_change t (c : Txn.schema_change) =
  match c with
  | Txn.Schema_add_type { type_name } -> Schema.add_type t.sch type_name
  | Txn.Schema_add_rel { type_name; rel } -> Schema.add_rel t.sch ~type_name rel
  | Txn.Schema_add_export { type_name; rel; export; attr } ->
    Schema.add_export t.sch ~type_name ~rel ~export ~attr
  | Txn.Schema_add_attr { type_name; def; repr = _ } ->
    Schema.add_attr t.sch ~type_name def;
    Engine.after_attr_added t.eng ~type_name ~attr:def.Schema.attr_name
  | Txn.Schema_add_subtype { def; _ } ->
    Schema.add_subtype t.sch def;
    Engine.after_attr_added t.eng ~type_name:def.Schema.parent
      ~attr:(Schema.membership_attr def.Schema.sub_name);
    List.iter
      (fun (a : Schema.attr_def) ->
        Engine.after_attr_added t.eng ~type_name:def.Schema.parent ~attr:a.Schema.attr_name)
      def.Schema.extra_attrs

let retract_schema_change t (c : Txn.schema_change) =
  match c with
  | Txn.Schema_add_type { type_name } -> Schema.retract_type t.sch type_name
  | Txn.Schema_add_rel { type_name; rel } ->
    Schema.retract_rel t.sch ~type_name rel.Schema.rel_name
  | Txn.Schema_add_export { type_name; rel; export; attr = _ } ->
    Schema.retract_export t.sch ~type_name ~rel ~export
  | Txn.Schema_add_attr { type_name; def; repr = _ } ->
    Engine.after_attr_retracted t.eng ~type_name ~attr:def.Schema.attr_name;
    Schema.retract_attr t.sch ~type_name def.Schema.attr_name
  | Txn.Schema_add_subtype { def; _ } ->
    List.iter
      (fun (a : Schema.attr_def) ->
        Engine.after_attr_retracted t.eng ~type_name:def.Schema.parent ~attr:a.Schema.attr_name)
      (List.rev def.Schema.extra_attrs);
    Engine.after_attr_retracted t.eng ~type_name:def.Schema.parent
      ~attr:(Schema.membership_attr def.Schema.sub_name);
    Schema.retract_subtype t.sch def.Schema.sub_name

(* ------------------------------------------------------------------ *)
(* Unlogged replay (undo / redo)                                       *)

let exec_forward_unlogged t op =
  match op with
  | Txn.Set_intrinsic { id; attr; new_value; old_value = _ } ->
    Store.write_value t.st id attr new_value;
    Engine.after_intrinsic_set t.eng id attr
  | Txn.Link { from_id; rel; to_id } ->
    Store.link t.st ~from_id ~rel ~to_id;
    Engine.after_link_change t.eng ~from_id ~rel ~to_id
  | Txn.Unlink { from_id; rel; to_id } ->
    if Store.unlink t.st ~from_id ~rel ~to_id then
      Engine.after_link_change t.eng ~from_id ~rel ~to_id
  | Txn.Create { id; type_name } ->
    ignore (Store.recreate_instance t.st ~id type_name);
    Engine.on_new_instance t.eng id
  | Txn.Delete { id; _ } ->
    Engine.on_delete_instance t.eng id;
    Store.delete_instance t.st id
  | Txn.Schema { change; retract } ->
    if retract then retract_schema_change t change else apply_schema_change t change;
    (* Strict mode re-validates the schema at every replayed version
       (undo/redo/checkout/recovery), so a walk across a version whose
       schema the analyzer rejects raises at that version. *)
    if Schema.strict t.sch then Schema.refresh t.sch

let undo_one_op t op =
  match op with
  | Txn.Delete { id; type_name; intrinsics } ->
    (* The inverse of a delete restores the recorded intrinsic snapshot;
       links are restored by the inverses of the Unlink ops that preceded
       the delete. *)
    ignore (Store.recreate_instance t.st ~id type_name);
    List.iter (fun (a, v) -> Store.write_value t.st id a v) intrinsics;
    Engine.on_new_instance t.eng id;
    List.iter (fun (a, _) -> Engine.after_intrinsic_set t.eng id a) intrinsics
  | op -> exec_forward_unlogged t (Txn.inverse_op op)

(* [ops] newest-first (either an open-txn log, or a committed delta
   reversed by the caller). *)
let apply_inverse_newest_first t ops = List.iter (undo_one_op t) ops

(* ------------------------------------------------------------------ *)
(* Transactions                                                        *)

let in_txn t = t.current <> None

let begin_txn t =
  if in_txn t then Errors.type_error "transaction already open";
  Counters.incr (counters t) "txns_started";
  Flight.record Flight.Txn_begin ~a:t.next_vid ~b:0;
  let tr = tracer t in
  if Trace.enabled tr then Trace.instant tr ~cat:"txn" "begin_txn";
  (* The propagation window opens here: mark waves run as the
     transaction mutates, so the profile must be armed before them, not
     at commit. *)
  if t.profiling then Engine.set_profile t.eng (Some (Profile.create ()));
  t.current <- Some []

let rollback_current t =
  match t.current with
  | None -> ()
  | Some ops ->
    t.current <- None;
    Flight.record Flight.Txn_abort ~a:(List.length ops) ~b:0;
    let tr = tracer t in
    if Trace.enabled tr then
      Trace.instant tr ~cat:"txn" ~args:[ ("ops", Trace.I (List.length ops)) ] "rollback";
    apply_inverse_newest_first t ops;
    Counters.incr (counters t) "txns_aborted";
    (* The restored state satisfied all constraints when it was current;
       propagate to settle watched attributes. *)
    Engine.propagate t.eng;
    harvest_profile t

let abort t =
  if not (in_txn t) then Errors.type_error "no open transaction to abort";
  rollback_current t

(* One bounded slice of incremental re-clustering maintenance, run at
   commit time (inside the commit latency window, so the disruption is
   visible in the [commit] histogram and bounded by [max_moves]).  A
   plan in flight is drained first; otherwise a new plan is cut when
   instance touches since the last plan exceed the drift threshold. *)
let maintenance_step t =
  match t.auto with
  | None -> ()
  | Some a ->
    let ready =
      Store.pending_moves t.st > 0
      ||
      let touches = Counters.get (counters t) "instance_touches" in
      touches - a.last_touches >= a.drift_threshold
      && begin
           a.last_touches <- touches;
           (* The plan cut (a full pack over the usage statistics) is
              the one slice whose cost scales with database size rather
              than [max_moves]; it gets its own histogram so the bounded
              migration slices are measured apart from it. *)
           let plan_ns = Clock.now_ns () in
           let pending = Store.begin_recluster ~strategy:a.ar_strategy t.st in
           Histogram.observe t.h_recluster_plan (Clock.elapsed_s ~since:plan_ns);
           pending > 0
         end
    in
    if ready then begin
      let start_ns = Clock.now_ns () in
      let moved = Store.recluster_step t.st ~max_moves:a.max_moves in
      if moved > 0 then begin
        Flight.record Flight.Recluster_slice ~a:moved ~b:0;
        Histogram.observe t.h_recluster_step (Clock.elapsed_s ~since:start_ns);
        let tr = tracer t in
        if Trace.enabled tr then
          Trace.complete tr ~cat:"storage" ~args:[ ("moves", Trace.I moved) ] ~start_ns
            "recluster_step"
      end
    end

let set_auto_recluster ?(strategy = Cactis_storage.Cluster.Greedy) ?(drift_threshold = 1024)
    ?(max_moves = 16) t on =
  if on then begin
    if drift_threshold < 1 then
      Errors.type_error "auto recluster: drift_threshold must be >= 1";
    if max_moves < 1 then Errors.type_error "auto recluster: max_moves must be >= 1";
    t.auto <-
      Some
        {
          ar_strategy = strategy;
          drift_threshold;
          max_moves;
          last_touches = Counters.get (counters t) "instance_touches";
        }
  end
  else t.auto <- None

let commit t =
  match t.current with
  | None -> Errors.type_error "no open transaction to commit"
  | Some ops ->
    let start_ns = Clock.now_ns () in
    (* Normally armed by [begin_txn]; covers profiling enabled mid-txn. *)
    (match Engine.profile t.eng with
    | None when t.profiling -> Engine.set_profile t.eng (Some (Profile.create ()))
    | _ -> ());
    (try Engine.propagate t.eng
     with e ->
       harvest_profile t;
       rollback_current t;
       raise e);
    harvest_profile t;
    t.current <- None;
    Counters.incr (counters t) "txns_committed";
    let ops = List.rev ops in
    if ops <> [] then begin
      (* Committing after an undo grows a sibling branch; the abandoned
         branch stays in the tree, reachable through its tags. *)
      t.redo_stack <- [];
      let delta = { Txn.ops; label = None } in
      let depth = match t.head with Some n -> n.depth + 1 | None -> 1 in
      t.head <- Some { vid = t.next_vid; delta; parent = t.head; depth };
      Flight.record Flight.Txn_commit ~a:t.next_vid ~b:(List.length ops);
      t.next_vid <- t.next_vid + 1;
      notify_hook t delta
    end;
    maintenance_step t;
    Histogram.observe t.h_commit (Clock.elapsed_s ~since:start_ns);
    let tr = tracer t in
    if Trace.enabled tr then
      Trace.complete tr ~cat:"txn"
        ~args:[ ("ops", Trace.I (List.length ops)) ]
        ~start_ns "commit"

let with_txn t f =
  begin_txn t;
  match f () with
  | v ->
    commit t;
    v
  | exception e ->
    if in_txn t then rollback_current t;
    raise e

let with_auto t f =
  if in_txn t then f ()
  else with_txn t f

let log t op =
  match t.current with
  | Some ops -> t.current <- Some (op :: ops)
  | None -> assert false

(* ------------------------------------------------------------------ *)
(* Primitives                                                          *)

let create_instance t type_name =
  with_auto t (fun () ->
      let inst = Store.create_instance t.st type_name in
      log t (Txn.Create { id = inst.Instance.id; type_name });
      Engine.on_new_instance t.eng inst.Instance.id;
      inst.Instance.id)

let set t id attr v =
  with_auto t (fun () ->
      let inst = Store.get t.st id in
      let def = Schema.attr t.sch ~type_name:inst.Instance.type_name attr in
      match def.Schema.kind with
      | Schema.Derived _ ->
        Errors.type_error "cannot set derived attribute %s.%s directly" inst.Instance.type_name attr
      | Schema.Intrinsic _ ->
        let slot = Store.read_slot t.st id attr in
        let old = slot.Instance.value in
        if not (Value.equal old v) then begin
          Store.write_value t.st id attr v;
          log t (Txn.Set_intrinsic { id; attr; old_value = old; new_value = v });
          Engine.after_intrinsic_set t.eng id attr
        end)

let get t ?watch id attr =
  try Engine.read t.eng ?watch id attr
  with Errors.Constraint_violation _ as e ->
    if in_txn t then rollback_current t;
    raise e

let link t ~from_id ~rel ~to_id =
  with_auto t (fun () ->
      Store.link t.st ~from_id ~rel ~to_id;
      log t (Txn.Link { from_id; rel; to_id });
      Engine.after_link_change t.eng ~from_id ~rel ~to_id)

let unlink t ~from_id ~rel ~to_id =
  with_auto t (fun () ->
      if not (Store.unlink t.st ~from_id ~rel ~to_id) then
        Errors.unknown "no link %d -[%s]-> %d" from_id rel to_id;
      log t (Txn.Unlink { from_id; rel; to_id });
      Engine.after_link_change t.eng ~from_id ~rel ~to_id)

let delete_instance t id =
  with_auto t (fun () ->
      let inst = Store.get t.st id in
      let links = Instance.all_links inst in
      List.iter
        (fun (rel, ids) ->
          List.iter
            (fun other ->
              (* Both directions appear in all_links; the second sight of
                 a pair finds the link already gone. *)
              if Store.unlink t.st ~from_id:id ~rel ~to_id:other then begin
                log t (Txn.Unlink { from_id = id; rel; to_id = other });
                Engine.after_link_change t.eng ~from_id:id ~rel ~to_id:other
              end)
            ids)
        links;
      let intrinsics =
        Schema.attrs t.sch ~type_name:inst.Instance.type_name
        |> List.filter_map (fun (d : Schema.attr_def) ->
               match d.Schema.kind with
               | Schema.Intrinsic _ ->
                 Some (d.Schema.attr_name, (Instance.slot inst d.Schema.attr_name).Instance.value)
               | Schema.Derived _ -> None)
      in
      log t (Txn.Delete { id; type_name = inst.Instance.type_name; intrinsics });
      Engine.on_delete_instance t.eng id;
      Store.delete_instance t.st id)

let related t id rel = Store.linked t.st id rel
let type_of t id = (Store.get t.st id).Instance.type_name
let instance_ids t = Store.instance_ids t.st
let instances_of_type t type_name = Store.instances_of_type t.st type_name

let watch t id attr = Engine.watch t.eng id attr
let unwatch t id attr = Engine.unwatch t.eng id attr

(* ------------------------------------------------------------------ *)
(* Subtypes                                                            *)

let in_subtype t id sub_name =
  let def = Schema.subtype t.sch sub_name in
  let inst = Store.get t.st id in
  if not (String.equal inst.Instance.type_name def.Schema.parent) then
    Errors.type_error "instance %d is a %s, not a %s (parent of subtype %s)" id
      inst.Instance.type_name def.Schema.parent sub_name;
  Value.as_bool (get t id (Schema.membership_attr sub_name))

let subtype_members t sub_name =
  let def = Schema.subtype t.sch sub_name in
  instances_of_type t def.Schema.parent |> List.filter (fun id -> in_subtype t id sub_name)

(* ------------------------------------------------------------------ *)
(* Schema extension

   Schema changes are first-class transaction deltas: each entry point
   applies the mutation and logs a {!Txn.Schema} op in the enclosing
   (or an automatic) transaction, so undo/redo/checkout traverse schema
   versions in order with data deltas and an attached WAL persists
   them. *)

(* The name of a derived definition in [change] that carries no DDL
   expression source, if any — such a change cannot be encoded into the
   WAL (rules are closures at run time). *)
let serializability_gap (change : Txn.schema_change) =
  let derived_without_repr (def : Schema.attr_def) repr =
    match (def.Schema.kind, repr) with
    | Schema.Derived _, None -> Some def.Schema.attr_name
    | _ -> None
  in
  match change with
  | Txn.Schema_add_attr { type_name; def; repr } ->
    Option.map (fun a -> type_name ^ "." ^ a) (derived_without_repr def repr)
  | Txn.Schema_add_subtype { def; predicate_repr; attr_reprs } ->
    if predicate_repr = None then Some ("the predicate of subtype " ^ def.Schema.sub_name)
    else
      List.fold_left2
        (fun acc a repr ->
          match acc with
          | Some _ -> acc
          | None -> Option.map (fun n -> def.Schema.parent ^ "." ^ n) (derived_without_repr a repr))
        None def.Schema.extra_attrs attr_reprs
  | Txn.Schema_add_type _ | Txn.Schema_add_rel _ | Txn.Schema_add_export _ -> None

let run_schema_change t change =
  (* Fail fast when a durability hook is attached: the hook encodes this
     delta at commit, and Codec raising mid-hook on an opaque closure
     would be too late.  Without a hook (in-memory databases), opaque
     closures remain allowed. *)
  (match t.commit_hook with
  | None -> ()
  | Some _ -> (
    match serializability_gap change with
    | None -> ()
    | Some what ->
      Errors.type_error
        "cannot log schema change: %s has no serializable rule expression (declare it through \
         the DDL front end, or pass ~expr / ~predicate_expr / ~attr_exprs)"
        what));
  let change_name =
    match change with
    | Txn.Schema_add_type _ -> "add_type"
    | Txn.Schema_add_rel _ -> "add_rel"
    | Txn.Schema_add_export _ -> "add_export"
    | Txn.Schema_add_attr _ -> "add_attr"
    | Txn.Schema_add_subtype _ -> "add_subtype"
  in
  with_auto t (fun () ->
      apply_schema_change t change;
      log t (Txn.Schema { change; retract = false });
      Flight.record_s Flight.Schema_delta ~a:t.next_vid ~b:0 change_name;
      if Schema.strict t.sch then Schema.refresh t.sch)

let add_type t type_name = run_schema_change t (Txn.Schema_add_type { type_name })

let add_rel t ~type_name rel = run_schema_change t (Txn.Schema_add_rel { type_name; rel })

let add_export t ~type_name ~rel ~export ~attr =
  run_schema_change t (Txn.Schema_add_export { type_name; rel; export; attr })

let add_attr t ?expr ~type_name def =
  run_schema_change t (Txn.Schema_add_attr { type_name; def; repr = expr });
  (* A DDL-sourced rule carries its convergence shape into the schema's
     shape registry (pure metadata: not part of the logged delta). *)
  match (def.Schema.kind, expr) with
  | Schema.Derived _, Some src -> (
    match Schema.classify_rule_repr src with
    | Some shape -> Schema.declare_rule_shape t.sch ~type_name ~attr:def.Schema.attr_name shape
    | None -> ())
  | _ -> ()

let add_subtype t ?predicate_expr ?(attr_exprs = []) (def : Schema.subtype_def) =
  (* [attr_exprs] aligns positionally with [extra_attrs]; pad with None
     so partial annotation stays legal on in-memory databases. *)
  let rec pad reprs attrs =
    match (reprs, attrs) with
    | _, [] -> []
    | [], _ :: rest -> None :: pad [] rest
    | r :: rrest, _ :: arest -> r :: pad rrest arest
  in
  run_schema_change t
    (Txn.Schema_add_subtype
       { def; predicate_repr = predicate_expr; attr_reprs = pad attr_exprs def.Schema.extra_attrs })

let register_recovery t name action = Engine.register_recovery t.eng name action

(* ------------------------------------------------------------------ *)
(* Schema versions                                                     *)

let install_baseline_schema t ops =
  if t.head <> None || in_txn t then
    Errors.type_error "baseline schema deltas must be installed on a fresh database";
  (* Retractions are legal here: a database recovered from a log
     linearizes undo into forward deltas, so its path — and hence the
     schema section of a checkpoint taken from it — can carry
     add/retract pairs.  Replayed in order they reproduce the same
     schema state. *)
  List.iter
    (function
      | Txn.Schema { change; retract } ->
        if retract then retract_schema_change t change else apply_schema_change t change
      | op ->
        Errors.type_error "baseline schema delta contains a non-schema op: %s"
          (Format.asprintf "%a" Txn.pp_op op))
    ops;
  t.baseline_schema_ops <- t.baseline_schema_ops @ ops

let schema_ops_on_path t =
  let rec collect acc = function
    | None -> acc
    | Some n -> collect (List.filter Txn.is_schema_op n.delta.Txn.ops @ acc) n.parent
  in
  t.baseline_schema_ops @ collect [] t.head

let schema_step_count t = List.length (schema_ops_on_path t)

(* ------------------------------------------------------------------ *)
(* Undo / redo / versions                                              *)

let position t = match t.head with Some n -> n.depth | None -> 0

let delta_sizes t =
  let rec collect acc = function
    | None -> acc
    | Some n -> collect (Txn.size n.delta :: acc) n.parent
  in
  collect [] t.head

let history t =
  let rec collect acc = function
    | None -> acc
    | Some n -> collect ((n.vid, n.delta) :: acc) n.parent
  in
  collect [] t.head

(* Move one step toward the root. *)
let step_back t =
  match t.head with
  | None -> Errors.type_error "nothing to undo"
  | Some n ->
    apply_inverse_newest_first t (List.rev n.delta.Txn.ops);
    Engine.propagate t.eng;
    t.head <- n.parent;
    notify_hook t (Txn.inverse n.delta);
    n

(* Move forward onto a known child node. *)
let step_forward t (n : vnode) =
  List.iter (exec_forward_unlogged t) n.delta.Txn.ops;
  Engine.propagate t.eng;
  t.head <- Some n;
  notify_hook t n.delta

let undo_last t =
  if in_txn t then Errors.type_error "cannot undo while a transaction is open";
  let n = step_back t in
  t.redo_stack <- n :: t.redo_stack;
  Counters.incr (counters t) "undos";
  let tr = tracer t in
  if Trace.enabled tr then
    Trace.instant tr ~cat:"txn" ~args:[ ("version", Trace.I n.vid) ] "undo"

let redo t =
  if in_txn t then Errors.type_error "cannot redo while a transaction is open";
  match t.redo_stack with
  | [] -> Errors.type_error "nothing to redo"
  | n :: rest ->
    step_forward t n;
    t.redo_stack <- rest;
    Counters.incr (counters t) "redos";
    let tr = tracer t in
    if Trace.enabled tr then
      Trace.instant tr ~cat:"txn" ~args:[ ("version", Trace.I n.vid) ] "redo"

let tag t name = Hashtbl.replace t.tag_tbl name t.head

let tags t =
  Hashtbl.fold
    (fun name node acc -> (name, (match node with Some n -> n.depth | None -> 0)) :: acc)
    t.tag_tbl []
  |> List.sort compare

(* Checkout walks from head up to the lowest common ancestor, then down
   to the target along recorded parent pointers. *)
let checkout t name =
  if in_txn t then Errors.type_error "cannot checkout while a transaction is open";
  let start_ns = Clock.now_ns () in
  let target =
    match Hashtbl.find_opt t.tag_tbl name with
    | Some node -> node
    | None -> Errors.unknown "unknown version tag %s" name
  in
  (* Ancestors of the target (by vid), for LCA detection. *)
  let target_ancestors = Hashtbl.create 16 in
  let rec mark = function
    | None -> ()
    | Some n ->
      Hashtbl.replace target_ancestors n.vid n;
      mark n.parent
  in
  mark target;
  let is_target_ancestor = function
    | None -> true  (* the root is an ancestor of everything *)
    | Some n -> Hashtbl.mem target_ancestors n.vid
  in
  (* Phase 1: walk head back to the LCA. *)
  while not (is_target_ancestor t.head) do
    ignore (step_back t)
  done;
  (* Phase 2: path from the LCA down to the target. *)
  let lca_vid = match t.head with Some n -> Some n.vid | None -> None in
  let rec path acc = function
    | None -> acc
    | Some n -> if Some n.vid = lca_vid then acc else path (n :: acc) n.parent
  in
  List.iter (step_forward t) (path [] target);
  t.redo_stack <- [];
  let tr = tracer t in
  if Trace.enabled tr then
    Trace.complete tr ~cat:"txn" ~args:[ ("tag", Trace.S name) ] ~start_ns "checkout"

(* ------------------------------------------------------------------ *)
(* Recovery replay                                                     *)

(* Re-apply one logged delta during crash recovery: ops run through the
   unlogged forward path (no open transaction, no hook — the log already
   holds this record) and the delta joins the version history so undo
   works across a restart.  Propagation is the caller's job once the
   whole log tail is replayed. *)
let replay_delta t (d : Txn.delta) =
  if in_txn t then Errors.type_error "cannot replay while a transaction is open";
  List.iter (exec_forward_unlogged t) d.Txn.ops;
  if d.Txn.ops <> [] then begin
    let depth = match t.head with Some n -> n.depth + 1 | None -> 1 in
    t.head <- Some { vid = t.next_vid; delta = d; parent = t.head; depth };
    t.next_vid <- t.next_vid + 1
  end

(* ------------------------------------------------------------------ *)
(* Storage management                                                  *)

let recluster ?strategy t =
  if in_txn t then Errors.type_error "cannot re-cluster inside a transaction";
  Store.recluster ?strategy t.st
