(* Full-pipeline property: random schemas through the DDL -> typecheck ->
   elaborate -> populate -> incremental evaluation vs oracle.

   The generator produces well-formed schemas by construction:
   - each class has int intrinsics [a0..], derived rules [r0..] where
     rule k only references intrinsics, earlier rules of the same
     instance, or any rule/intrinsic across the class's self-relationship
     (cross-instance references terminate because instance links are
     created old->new, keeping the data graph acyclic);
   - optionally a transmission alias is declared and read through.

   Properties checked per generated schema:
   - the type checker accepts it and infers int for every rule;
   - after random instances/links/sets, every derived attribute equals
     the from-scratch oracle;
   - the structural integrity auditor stays clean. *)

module Value = Cactis.Value
module Db = Cactis.Db
module Engine = Cactis.Engine
module Rng = Cactis_util.Rng

type gen_schema = {
  seed : int;
  classes : int;  (* 1..2 *)
  intrinsics : int;  (* 1..3 per class *)
  rules : int;  (* 1..3 per class *)
  instances : int;  (* 2..12 *)
  ops : int;  (* 0..20 *)
  use_alias : bool;
}

let gen =
  QCheck.Gen.(
    let* seed = int_range 0 100_000 in
    let* classes = int_range 1 2 in
    let* intrinsics = int_range 1 3 in
    let* rules = int_range 1 3 in
    let* instances = int_range 2 12 in
    let* ops = int_range 0 20 in
    let* use_alias = bool in
    return { seed; classes; intrinsics; rules; instances; ops; use_alias })

let print_cfg c =
  Printf.sprintf "seed=%d classes=%d intr=%d rules=%d inst=%d ops=%d alias=%b" c.seed c.classes
    c.intrinsics c.rules c.instances c.ops c.use_alias

(* Build the DDL source for one random schema. *)
let schema_source cfg =
  let rng = Rng.create cfg.seed in
  let buf = Buffer.create 512 in
  for c = 0 to cfg.classes - 1 do
    let cname = Printf.sprintf "k%d" c in
    Buffer.add_string buf (Printf.sprintf "object class %s is\n" cname);
    Buffer.add_string buf
      (Printf.sprintf
         "  relationships\n    down : %s multi socket inverse up;\n    up : %s multi plug inverse down;\n"
         cname cname);
    Buffer.add_string buf "  attributes\n";
    for a = 0 to cfg.intrinsics - 1 do
      Buffer.add_string buf (Printf.sprintf "    a%d : int := %d;\n" a (Rng.int rng 10))
    done;
    Buffer.add_string buf "  rules\n";
    for r = 0 to cfg.rules - 1 do
      (* Safe expression: combination of intrinsics, earlier same-instance
         rules, and aggregates across [down]. *)
      let atom () =
        match Rng.int rng (if r > 0 then 4 else 3) with
        | 0 -> string_of_int (Rng.int rng 20)
        | 1 -> Printf.sprintf "a%d" (Rng.int rng cfg.intrinsics)
        | 2 ->
          (* Cross-instance: may reference any rule or intrinsic, including
             this very rule (recursion over the DAG), or an alias. *)
          let target =
            if cfg.use_alias && Rng.chance rng 0.3 then "exported"
            else if Rng.bool rng then Printf.sprintf "r%d" (Rng.int rng cfg.rules)
            else Printf.sprintf "a%d" (Rng.int rng cfg.intrinsics)
          in
          let agg = match Rng.int rng 3 with 0 -> "sum" | 1 -> "max" | _ -> "min" in
          Printf.sprintf "%s(down.%s default 0)" agg target
        | _ -> Printf.sprintf "r%d" (Rng.int rng r)
      in
      let op = match Rng.int rng 3 with 0 -> "+" | 1 -> "-" | _ -> "*" in
      Buffer.add_string buf (Printf.sprintf "    r%d = %s %s %s;\n" r (atom ()) op (atom ()))
    done;
    if cfg.use_alias then
      Buffer.add_string buf "  transmits\n    up.exported = r0;\n";
    Buffer.add_string buf "end object;\n"
  done;
  Buffer.contents buf

let run_pipeline cfg =
  let src = schema_source cfg in
  let items = Cactis_ddl.Parser.parse_schema src in
  (* 1: type checking accepts, everything infers to int *)
  let type_errors = Cactis_ddl.Typecheck.check items in
  if type_errors <> [] then
    QCheck.Test.fail_reportf "type errors in generated schema:\n%s\n%s"
      (String.concat "\n" type_errors) src;
  let db = Db.create (Cactis_ddl.Elaborate.schema items) in
  let rng = Rng.create (cfg.seed + 1) in
  (* 2: populate: instances round-robin across classes; links old->new
     within the same class *)
  let ids =
    Array.init cfg.instances (fun i -> Db.create_instance db (Printf.sprintf "k%d" (i mod cfg.classes)))
  in
  Array.iteri
    (fun i id ->
      if i >= cfg.classes && Rng.chance rng 0.7 then begin
        (* link to a same-class newer instance: [down] points old->new *)
        let candidates =
          Array.to_list ids
          |> List.filteri (fun j _ -> j > i && j mod cfg.classes = i mod cfg.classes)
        in
        match candidates with
        | [] -> ()
        | l ->
          let target = Rng.pick_list rng l in
          if not (List.mem target (Db.related db id "down")) then
            Db.link db ~from_id:id ~rel:"down" ~to_id:target
      end)
    ids;
  (* 3: random updates and queries *)
  for _ = 1 to cfg.ops do
    let id = ids.(Rng.int rng cfg.instances) in
    if Rng.chance rng 0.6 then
      Db.set db id (Printf.sprintf "a%d" (Rng.int rng cfg.intrinsics)) (Value.Int (Rng.int rng 50))
    else
      ignore (Db.get db ~watch:(Rng.bool rng) id (Printf.sprintf "r%d" (Rng.int rng cfg.rules)))
  done;
  (* 4: every derived value matches the oracle; structure intact *)
  let ok_values =
    Array.for_all
      (fun id ->
        List.for_all
          (fun r ->
            let attr = Printf.sprintf "r%d" r in
            Value.equal (Db.get db ~watch:false id attr)
              (Engine.oracle_value (Db.engine db) id attr))
          (List.init cfg.rules (fun r -> r)))
      ids
  in
  let clean = Cactis.Integrity.check db = [] in
  if not ok_values then QCheck.Test.fail_reportf "oracle mismatch for schema:\n%s" src;
  if not clean then QCheck.Test.fail_reportf "integrity violation for schema:\n%s" src;
  true

let prop_pipeline =
  QCheck.Test.make ~name:"random schemas: typecheck, elaborate, evaluate, oracle" ~count:150
    (QCheck.make ~print:print_cfg gen)
    run_pipeline

let () =
  Alcotest.run "cactis-gen-schema"
    [ ("pipeline", [ QCheck_alcotest.to_alcotest prop_pipeline ]) ]
