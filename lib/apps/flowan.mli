(** Program flow analysis via attribute evaluation (§4).

    "Since Cactis does not support data cycles, it can only handle flow
    analysis for simple languages such as a goto-less Pascal" — we
    implement exactly that: structured programs of assignments,
    sequences and conditionals are compiled to a control-flow DAG stored
    as database objects, and the two classic analyses are expressed as
    attribute evaluation rules:

    - {e live variables} (backward): [live_out = ∪ succ.live_in],
      [live_in = use ∪ (live_out − def)];
    - {e reaching definitions} (forward): [reach_in = ∪ pred.reach_out],
      [reach_out = gen ∪ (reach_in − kill)].

    Loops would make the attribute graph cyclic, matching the paper's
    stated limitation (the fixed-point techniques of [Far86] are future
    work there too).  The static analyzer knows this {e from the schema
    alone}: the flow rules are potentially circular along [succ]/[pred],
    realized exactly when the control-flow graph has a cycle.  So
    {!analyze} rejects [While]-ful programs up front ({!Rejected},
    carrying the analyzer's witness path) without building a single
    object; bypass the check ([~static_check:false]) and the engine's
    dynamic detector raises {!Cactis.Errors.Cycle} at query time
    instead. *)

type program =
  | Assign of { target : string; uses : string list; label : string }
  | Seq of program * program
  | If of { cond_uses : string list; then_ : program; else_ : program }
  | While of { cond_uses : string list; body : program }
      (** unsupported by the analysis: creates an attribute cycle *)

type t

(** Raised by {!analyze} for programs with loops: [witness] is the
    analyzer's type-level dependency cycle (e.g.
    [flow_node.live_in -> flow_node.live_out -[succ]-> flow_node.live_in]). *)
exception Rejected of { message : string; witness : string }

(** A fresh copy of the flow-analysis schema (for inspection/linting). *)
val schema : unit -> Cactis.Schema.t

(** The static analyzer's verdict on {!schema} — two potential-cycle
    warnings (liveness backward, reaching forward), each with a witness. *)
val static_diagnostics : unit -> Cactis_analysis.Diag.t list

(** [analyze ?static_check ?fixed_point ?exit_live program] builds the
    CFG database.  [exit_live] names the variables live at program exit
    (results, globals); when non-empty a synthetic ["exit"] node carries
    them, so final assignments to them are not flagged dead.

    With [~fixed_point:true] the [Far86] extension is enabled: the four
    flow attributes are declared monotone over their powerset lattices
    (height = the program's distinct variable/label count, bottom = the
    empty set) and the database runs under {!Cactis.Db.set_fixed_point},
    so [While]-ful programs evaluate to their least fixed point — the
    textbook iterative-dataflow solution — instead of being rejected.
    @raise Rejected for [While]-ful programs when [static_check] (the
    default) is on and [fixed_point] is off — before any object is
    created.  With [~static_check:false] the program builds, and
    querying its attributes raises [Errors.Cycle] dynamically. *)
val analyze : ?static_check:bool -> ?fixed_point:bool -> ?exit_live:string list -> program -> t

val db : t -> Cactis.Db.t

(** Node ids in program order (entry first); [label n] names assignment
    nodes ("if"/"join" for synthetic nodes). *)
val nodes : t -> int list

val label : t -> int -> string

(** Variables live on entry to / exit from a node. *)
val live_in : t -> int -> string list

val live_out : t -> int -> string list

(** Labels of assignments reaching the entry / exit of a node. *)
val reaching_in : t -> int -> string list

val reaching_out : t -> int -> string list

(** [dead_assignments t] — assignment nodes whose target is not live on
    exit: candidates for elimination (the testing/optimization use the
    paper cites). *)
val dead_assignments : t -> int list
