(** Monotonic wall clock.

    All observability timestamps come from the OS monotonic clock
    (CLOCK_MONOTONIC via bechamel's stub), so spans are immune to NTP
    steps and wall-clock adjustments.  Readings are nanoseconds from an
    arbitrary epoch; only differences are meaningful. *)

(** Current monotonic reading, nanoseconds. *)
val now_ns : unit -> int64

(** [elapsed_s ~since] — seconds since an earlier [now_ns] reading. *)
val elapsed_s : since:int64 -> float
