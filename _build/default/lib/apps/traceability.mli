(** Requirements traceability (§3).

    The paper's inventory of software-environment objects includes
    "requirement specifications … test data, verification results, bug
    reports".  This tool wires requirements to the test cases that verify
    them and derives coverage facts:

    - a requirement is {e covered} when at least one passing test
      verifies it;
    - a project's {e coverage count} and {e release readiness} (every
      critical requirement covered) derive from its requirements;

    so a single test-run result flowing in (one intrinsic update) ripples
    through requirement coverage into the project dashboard — the same
    consistency argument as the milestone manager, §4. *)

type t

val create : unit -> t

val db : t -> Cactis.Db.t

val add_project : t -> name:string -> int

(** [add_requirement t ~project ~name ~critical]. *)
val add_requirement : t -> project:int -> name:string -> critical:bool -> int

(** [add_test t ~name] — a test case, initially failing. *)
val add_test : t -> name:string -> int

(** [verifies t ~test ~requirement] — link a test to the requirement it
    checks. *)
val verifies : t -> test:int -> requirement:int -> unit

(** [record_run t ~test ~passed] — ingest one test-run result. *)
val record_run : t -> test:int -> passed:bool -> unit

val covered : t -> int -> bool

(** Requirements of the project that are covered / total. *)
val coverage : t -> int -> int * int

(** Every critical requirement of the project is covered. *)
val release_ready : t -> int -> bool

(** Critical, uncovered requirements (the blockers). *)
val blockers : t -> int -> int list

val requirement_name : t -> int -> string
