lib/cc/serial_oracle.mli: Cactis Workload
