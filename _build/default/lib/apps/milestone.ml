module Db = Cactis.Db
module Schema = Cactis.Schema
module Rule = Cactis.Rule
module Value = Cactis.Value
module Vtime = Cactis_util.Vtime

type t = { database : Db.t }

(* The schema is the DDL rendering of Figure 1 — built through the DDL
   front-end, as a user of the system would. *)
let schema_src =
  {|
  object class milestone is
    relationships
      depends_on  : milestone multi socket inverse consists_of;
      consists_of : milestone multi plug   inverse depends_on;
    attributes
      name        : string;
      sched_compl : time;
      local_work  : float := 1.0;
    rules
      exp_compl = max(depends_on.exp_compl default time(0)) + local_work;
      late = later_than(exp_compl, sched_compl);
  end object;
|}

let create ?strategy () =
  let sch = Cactis_ddl.Elaborate.load_string schema_src in
  { database = Db.create ?strategy sch }

let db t = t.database

let add t ~name ~scheduled ~local_work =
  Db.with_txn t.database (fun () ->
      let id = Db.create_instance t.database "milestone" in
      Db.set t.database id "name" (Value.Str name);
      Db.set t.database id "sched_compl" (Value.Time (Vtime.of_days scheduled));
      Db.set t.database id "local_work" (Value.Float local_work);
      id)

let depends_on t a b = Db.link t.database ~from_id:a ~rel:"depends_on" ~to_id:b

let set_local_work t id days = Db.set t.database id "local_work" (Value.Float days)

let slip t id days =
  let current = Value.as_float (Db.get t.database ~watch:false id "local_work") in
  set_local_work t id (current +. days)

let name t id = Value.as_string (Db.get t.database ~watch:false id "name")
let scheduled t id = Vtime.to_days (Value.as_time (Db.get t.database ~watch:false id "sched_compl"))
let expected t id = Vtime.to_days (Value.as_time (Db.get t.database id "exp_compl"))
let is_late t id = Value.as_bool (Db.get t.database id "late")

let all t = Db.instances_of_type t.database "milestone"

let late_set t = List.filter (is_late t) (all t)

let critical_path t id =
  (* Follow, from [id] backwards, the dependency whose expected
     completion dominates. *)
  let rec walk acc id =
    let deps = Db.related t.database id "depends_on" in
    match deps with
    | [] -> id :: acc
    | _ ->
      let dominant =
        List.fold_left
          (fun best d -> if expected t d > expected t best then d else best)
          (List.hd deps) (List.tl deps)
      in
      walk (id :: acc) dominant
  in
  walk [] id

let enable_very_late t ~limit_days =
  Db.add_attr t.database ~type_name:"milestone"
    (Rule.derived "very_late"
       (Rule.map2 "exp_compl" "sched_compl" (fun expc sched ->
            let gap = Vtime.to_days (Value.as_time expc) -. Vtime.to_days (Value.as_time sched) in
            Value.Bool (gap > limit_days))));
  Db.add_subtype t.database
    {
      Schema.sub_name = "very_late_milestone";
      parent = "milestone";
      predicate = Rule.copy_self "very_late";
      extra_attrs = [ Rule.intrinsic "escalated_to" (Value.Str "project-manager") ];
    }

let is_very_late t id = Value.as_bool (Db.get t.database id "very_late")

let very_late_set t = Db.subtype_members t.database "very_late_milestone"

let report t =
  let buf = Buffer.create 256 in
  List.iter
    (fun id ->
      Buffer.add_string buf
        (Printf.sprintf "%-20s sched %6.1f  expected %6.1f  %s\n" (name t id) (scheduled t id)
           (expected t id)
           (if is_late t id then "LATE" else "on time")))
    (all t);
  Buffer.contents buf
