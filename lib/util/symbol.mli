(** Global string interner for attribute and relationship names.

    Schema compilation (see {!Schema}) resolves every name to a dense
    integer symbol once, so the engine's hot paths hash and compare
    machine ints instead of strings.  Interning is process-wide: the
    same name always maps to the same symbol, which lets packed
    [(instance, symbol)] keys survive schema recompilation. *)

(** [intern s] returns the symbol for [s], allocating one on first use. *)
val intern : string -> int

(** [find s] — the symbol for [s] if it was ever interned. *)
val find : string -> int option

(** [name sym] — the string a symbol was interned from.  O(1).
    @raise Invalid_argument if [sym] was never allocated. *)
val name : int -> string

(** Number of symbols allocated so far. *)
val count : unit -> int

(** {1 Packed (instance id, symbol) keys}

    [pack id sym] packs an instance id and a symbol into a single
    immediate int (20 bits of symbol, the rest id), so per-attribute
    engine tables key on ints instead of [(int * string)] pairs. *)

val pack : int -> int -> int
val pack_id : int -> int
val pack_sym : int -> int
